//! Unit tests of the experiment arithmetic over a synthetic suite —
//! fast checks that the ratio/CPI formulas match the paper's definitions,
//! independent of the toolchain.

use d16_core::{experiments as ex, Measurement, Suite};
use d16_sim::ExecStats;

/// Builds a synthetic measurement cell.
fn cell(workload: &str, target: &str, size: u64, insns: u64, interlocks: u64) -> Measurement {
    Measurement {
        workload: Box::leak(workload.to_string().into_boxed_str()),
        target: target.to_string(),
        exit: 0,
        size_bytes: size,
        text_bytes: size,
        stats: ExecStats {
            insns,
            loads: insns / 10,
            stores: insns / 20,
            interlocks,
            ifetch_words: if target.starts_with("D16") { insns * 6 / 10 } else { insns },
            ..Default::default()
        },
        // A 32-bit bus fetches every word once for DLXe (k=1) and about
        // six tenths as many words for D16 (k=2 with branch waste).
        ireq_bus32: if target.starts_with("D16") { insns * 6 / 10 } else { insns },
        ireq_bus64: if target.starts_with("D16") { insns * 3 / 10 } else { insns / 2 },
        tele: d16_telemetry::Counters::new(&d16_sim::SIM_SCHEMA),
    }
}

fn synthetic_suite() -> Suite {
    let mut suite = Suite::default();
    for (w, d16_size, d16_insns, dlxe_size, dlxe_insns) in
        [("alpha", 1000u64, 100_000u64, 1500u64, 85_000u64), ("beta", 2000, 400_000, 3200, 340_000)]
    {
        for (target, size, insns) in [
            ("D16/16/2", d16_size, d16_insns),
            ("DLXe/16/2", dlxe_size + 100, dlxe_insns + 8000),
            ("DLXe/16/3", dlxe_size + 50, dlxe_insns + 4000),
            ("DLXe/32/2", dlxe_size + 40, dlxe_insns + 3000),
            ("DLXe/32/3", dlxe_size, dlxe_insns),
        ] {
            suite.cells.insert(
                (w.to_string(), target.to_string()),
                cell(w, target, size, insns, insns / 10),
            );
        }
    }
    suite
}

#[test]
fn density_ratios_are_size_quotients() {
    let suite = synthetic_suite();
    let rows = ex::fig4_relative_density(&suite);
    assert_eq!(rows.len(), 2);
    let alpha = rows.iter().find(|r| r.workload == "alpha").unwrap();
    assert!((alpha.value - 1.5).abs() < 1e-12);
    let avg = ex::average(&rows);
    assert!((avg - (1.5 + 1.6) / 2.0).abs() < 1e-12);
}

#[test]
fn path_ratios_are_insn_quotients() {
    let suite = synthetic_suite();
    let rows = ex::fig5_path_length(&suite);
    let alpha = rows.iter().find(|r| r.workload == "alpha").unwrap();
    assert!((alpha.value - 0.85).abs() < 1e-12);
}

#[test]
fn grid_is_normalized_to_d16() {
    let suite = synthetic_suite();
    let size = ex::code_size_grid(&suite);
    let alpha = size.iter().find(|r| r.workload == "alpha").unwrap();
    assert!((alpha.dlxe_32_3 - 1.5).abs() < 1e-12);
    assert!(alpha.dlxe_16_2 > alpha.dlxe_32_3, "restrictions add size");
    let path = ex::path_length_grid(&suite);
    let alpha = path.iter().find(|r| r.workload == "alpha").unwrap();
    assert!(alpha.dlxe_16_2 > alpha.dlxe_32_3, "restrictions add path");
}

#[test]
fn cacheless_cycles_follow_paper_formula() {
    let suite = synthetic_suite();
    let m = suite.try_get("alpha", "D16/16/2").unwrap();
    // Cycles = IC + Interlocks + l * (IReq + DReq).
    let base = m.stats.insns + m.stats.interlocks;
    assert_eq!(m.cacheless_cycles(4, 0), base);
    let reqs = m.ireq_bus32 + m.stats.loads + m.stats.stores;
    assert_eq!(m.cacheless_cycles(4, 3), base + 3 * reqs);
    let reqs64 = m.ireq_bus64 + m.stats.loads + m.stats.stores;
    assert_eq!(m.cacheless_cycles(8, 2), base + 2 * reqs64);
}

#[test]
fn cycle_ratios_rise_with_wait_states() {
    let suite = synthetic_suite();
    let rows = ex::table11_12_cycle_ratios(&suite, 4);
    for r in &rows {
        assert!(r.ratios[0] < 1.0, "DLXe wins at l=0 (shorter path)");
        for w in r.ratios.windows(2) {
            assert!(w[1] > w[0], "latency must erode the DLXe advantage: {:?}", r.ratios);
        }
    }
}

#[test]
fn fig14_normalization_uses_dlxe_instruction_count() {
    let suite = synthetic_suite();
    let points = ex::fig14_cacheless_cpi(&suite, 4);
    for p in &points {
        // Normalized D16 CPI divides D16 cycles by the *DLXe* path, so it
        // exceeds the raw D16 CPI (D16 executes more instructions).
        assert!(p.d16_normalized > p.d16_cpi, "{p:?}");
    }
    // CPI at zero latency is (IC + interlocks)/IC = 1.1 for both.
    assert!((points[0].dlxe_cpi - 1.1).abs() < 1e-9);
    assert!((points[0].d16_cpi - 1.1).abs() < 1e-9);
}

#[test]
fn saturation_decreases_with_latency() {
    let suite = synthetic_suite();
    let pts = ex::fig15_fetch_saturation(&suite, 4);
    for w in pts.windows(2) {
        assert!(w[1].dlxe < w[0].dlxe);
        assert!(w[1].d16 < w[0].d16);
    }
    // D16 makes fewer requests per cycle at equal latency.
    for p in &pts {
        assert!(p.d16 < p.dlxe, "{p:?}");
    }
}

#[test]
fn traffic_vs_density_rows() {
    let suite = synthetic_suite();
    let rows = ex::fig13_traffic_vs_density(&suite);
    for r in &rows {
        assert!(r.traffic_ratio > 1.0, "DLXe moves more instruction words");
        assert!(r.size_ratio > 1.0);
    }
}

#[test]
fn table3_is_zero_when_traffic_is_equal() {
    // The synthetic suite gives every target loads = insns/10; D16 runs
    // more instructions so its traffic increase is positive.
    let suite = synthetic_suite();
    let rows = ex::table3_data_traffic(&suite);
    for r in &rows {
        assert!(r.d16_pct > 0.0);
        assert!(r.dlxe16_pct > 0.0);
        assert!(r.d16_pct > r.dlxe16_pct, "D16 pays most");
    }
}
