//! Gates on the parallel experiment engine:
//!
//! * collection is byte-identical no matter how many worker threads run;
//! * the cache experiments sweep each recorded trace exactly once;
//! * the single-pass grid agrees bit-for-bit with dedicated per-config
//!   replays (the legacy path).

use d16_core::{base_specs, experiments as ex, standard_specs, Suite};
use d16_isa::Isa;
use d16_workloads::{by_name, Workload};

fn workloads(names: &[&str]) -> Vec<&'static Workload> {
    names.iter().map(|n| by_name(n).expect("workload")).collect()
}

#[test]
fn parallel_collection_is_deterministic() {
    let ws = workloads(&["towers", "assem"]);
    let serial = Suite::collect_for_jobs(&ws, &standard_specs(), true, 1).unwrap();
    let threaded = Suite::collect_for_jobs(&ws, &standard_specs(), true, 4).unwrap();
    // Measurements carry no Eq impl; their Debug form is total, so a
    // byte-identical rendering means byte-identical cells.
    assert_eq!(format!("{:#?}", serial.cells), format!("{:#?}", threaded.cells));
    assert_eq!(serial.traces, threaded.traces, "recorded traces must not depend on jobs");
    assert_eq!(serial.cells.len(), ws.len() * standard_specs().len());
}

#[test]
fn oversubscribed_pool_is_harmless() {
    // More workers than work items: the pool clamps, and nothing is lost.
    let ws = workloads(&["towers"]);
    let suite = Suite::collect_for_jobs(&ws, &base_specs(), false, 64).unwrap();
    assert_eq!(suite.cells.len(), 2);
}

#[test]
fn cache_experiments_replay_each_trace_once() {
    let ws = workloads(&["assem"]);
    let suite = Suite::collect_for(&ws, &base_specs(), true).unwrap();
    ex::fig16_icache_miss(&suite, "assem").unwrap();
    ex::fig17_18_cache_cpi(&suite, "assem", 4096).unwrap();
    ex::fig17_18_cache_cpi(&suite, "assem", 16384).unwrap();
    ex::fig19_cache_traffic(&suite, "assem").unwrap();
    ex::miss_rate_grid(&suite, "assem").unwrap();
    for isa in [Isa::D16, Isa::Dlxe] {
        assert_eq!(
            suite.try_trace("assem", isa).unwrap().replay_count(),
            1,
            "every figure and table must come out of one {isa:?} sweep"
        );
    }
}

#[test]
fn single_pass_grid_matches_legacy_replays() {
    let ws = workloads(&["assem"]);
    let suite = Suite::collect_for(&ws, &base_specs(), true).unwrap();
    for isa in [Isa::D16, Isa::Dlxe] {
        let grid = suite.cache_grid("assem", isa).unwrap();
        for (i, cfg) in ex::cache_grid_configs().iter().enumerate() {
            let solo = ex::replay_cache(&suite, "assem", isa, *cfg, *cfg).unwrap();
            assert_eq!(grid[i].icache(), solo.icache(), "{isa:?} config {cfg:?}");
            assert_eq!(grid[i].dcache(), solo.dcache(), "{isa:?} config {cfg:?}");
        }
    }
}
