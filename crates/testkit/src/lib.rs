//! # d16-testkit — deterministic property-test support
//!
//! The repository's property-style tests originally used `proptest`, and
//! its benches used `criterion`. Both are external crates, and this
//! repository must build and test in fully offline environments with no
//! registry access (DESIGN.md §7). This crate replaces the part of those
//! libraries we actually used: a small, fast, *deterministic* PRNG plus a
//! case-runner, so every test is reproducible from a fixed seed and
//! failures print the case number that produced them.
//!
//! ```
//! use d16_testkit::{cases, Rng};
//!
//! let mut rng = Rng::new(42);
//! let x = rng.below(10);
//! assert!(x < 10);
//!
//! cases(100, |case, rng| {
//!     let a = rng.next_u32();
//!     assert_eq!(a ^ a, 0, "case {case}");
//! });
//! ```

pub mod faults;

/// A SplitMix64 pseudo-random generator: tiny, fast, and statistically
/// solid for test-input generation (it is the seeding generator of choice
/// for xoshiro-family PRNGs).
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's multiply-shift reduction; the bias is < 2^-32 and
        // irrelevant for test generation.
        ((u64::from(self.next_u32()) * u64::from(n)) >> 32) as u32
    }

    /// A uniformly random value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        let off = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as i64;
        (lo as i64 + off) as i32
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u32) as usize]
    }
}

/// A process-unique scratch directory under the system temp dir, removed
/// on drop. Replaces the `tempfile` crate for store and CLI tests (same
/// offline constraint as the PRNG above).
#[derive(Debug)]
pub struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    /// Creates `<tmp>/<label>-<pid>-<n>`, unique within and across
    /// concurrently running test processes.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(label: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("d16-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Runs `f` for `n` independent cases, each with its own seeded generator.
/// The case index is passed so assertion messages can name the failing
/// case; re-running the test replays the identical inputs.
pub fn cases(n: usize, mut f: impl FnMut(usize, &mut Rng)) {
    for case in 0..n {
        // Decorrelate streams: a fixed base xor a mixed case index.
        let mut rng = Rng::new(0xD16_CAFE ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        f(case, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
            let v = r.range_i32(-5, 6);
            assert!((-5..6).contains(&v));
        }
        // Both endpoints of a range are reachable.
        let mut seen = [false; 11];
        for _ in 0..10_000 {
            seen[(r.range_i32(-5, 6) + 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let xs = [1, 2, 3, 4];
        let mut r = Rng::new(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.pick(&xs) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_passes_distinct_rngs() {
        let mut firsts = Vec::new();
        cases(32, |_, rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 32, "case streams must differ");
    }
}
