//! Deterministic fault injection for the experiment stack.
//!
//! A *failpoint* is a named site in library code that can be armed from
//! the outside to simulate a failure the real world produces rarely —
//! store I/O errors, a register allocator that fails to converge, a
//! truncated access trace, an off-grid cache configuration. Armed
//! failpoints take the code down its *real* error path; nothing is
//! mocked, so the CI `faults` stage can assert that a fault degrades a
//! run (documented exit codes, stderr diagnostics, remaining cells
//! intact) instead of aborting it.
//!
//! Failpoints are armed through the `D16_FAILPOINTS` environment
//! variable: a comma-separated list of `name` or `name=arg` entries,
//! parsed once per process. An entry without an argument arms the point
//! for every subject; `name=arg` arms it only where the site's subject
//! (a workload or function name) equals `arg` exactly.
//!
//! ```text
//! D16_FAILPOINTS=store-io                   repro --smoke --store DIR
//! D16_FAILPOINTS=regalloc-diverge=ack       repro --only ackermann,towers
//! D16_FAILPOINTS=trace-truncate=assem,off-grid-config   repro --smoke
//! ```
//!
//! With the variable unset (every production run), an armed-check is one
//! `OnceLock` load and a probe of an empty list — nothing on any hot
//! path, and no behavior change anywhere.

use std::sync::OnceLock;

/// The environment variable failpoints are armed through.
pub const ENV: &str = "D16_FAILPOINTS";

/// One parsed failpoint entry: the point name and its optional subject
/// argument.
pub type Entry = (String, Option<String>);

/// Parses a `D16_FAILPOINTS` specification. Empty entries are skipped;
/// `name=arg` splits on the first `=`.
#[must_use]
pub fn parse(spec: &str) -> Vec<Entry> {
    spec.split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(|e| match e.split_once('=') {
            Some((name, arg)) => (name.to_string(), Some(arg.to_string())),
            None => (e.to_string(), None),
        })
        .collect()
}

fn armed_points() -> &'static [Entry] {
    static POINTS: OnceLock<Vec<Entry>> = OnceLock::new();
    POINTS.get_or_init(|| match std::env::var(ENV) {
        Ok(spec) => parse(&spec),
        Err(_) => Vec::new(),
    })
}

/// Whether `point` is armed, returning its argument (an armed point
/// with no argument returns `Some("")`). Use [`armed_for`] when the
/// site has a subject to match against the argument.
#[must_use]
pub fn armed(point: &str) -> Option<&'static str> {
    armed_points()
        .iter()
        .find(|(name, _)| name == point)
        .map(|(_, arg)| arg.as_deref().unwrap_or(""))
}

/// Whether `point` is armed for `subject`: armed with no argument, or
/// armed with an argument equal to `subject`.
#[must_use]
pub fn armed_for(point: &str, subject: &str) -> bool {
    armed_points()
        .iter()
        .any(|(name, arg)| name == point && arg.as_deref().is_none_or(|a| a == subject))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_entries_and_arguments() {
        assert_eq!(parse(""), vec![]);
        assert_eq!(parse("store-io"), vec![("store-io".to_string(), None)]);
        assert_eq!(
            parse("regalloc-diverge=ack, trace-truncate=assem ,,off-grid-config"),
            vec![
                ("regalloc-diverge".to_string(), Some("ack".to_string())),
                ("trace-truncate".to_string(), Some("assem".to_string())),
                ("off-grid-config".to_string(), None),
            ]
        );
        // Only the first `=` splits; the rest rides in the argument.
        assert_eq!(parse("a=b=c"), vec![("a".to_string(), Some("b=c".to_string()))]);
    }

    #[test]
    fn unarmed_process_has_no_failpoints() {
        // The test binary never sets D16_FAILPOINTS, so every probe is
        // cold — the production fast path.
        assert_eq!(armed("store-io"), None);
        assert!(!armed_for("regalloc-diverge", "ack"));
    }
}
