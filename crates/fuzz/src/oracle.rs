//! The differential oracles.
//!
//! For each program, four independent checks:
//!
//! 1. **Reference agreement** — the exit status on every target at every
//!    opt level must equal the reference interpreter's value.
//! 2. **Cross-target agreement** — implied by (1), but reported
//!    distinctly: two targets disagreeing with each other is a stronger
//!    signal than both disagreeing with the interpreter (which could be
//!    an interpreter bug).
//! 3. **Encoding round-trip** — every instruction word in every compiled
//!    image must decode and re-encode byte-identically (D16) or to a
//!    stable canonical form (DLXe). This re-checks the exhaustive
//!    `isa`-level property on exactly the words real codegen emits.
//! 4. **Engine agreement** — the block-caching execution engine and the
//!    per-instruction interpreter must agree on the stop result, the
//!    pipeline statistics, and an order-sensitive checksum of the entire
//!    access stream, on every image the other oracles compile. Generated
//!    programs reach block shapes (computed branches, tight self-loops,
//!    faults) the curated suite never produces.

use crate::ast::Prog;
use crate::interp;
use d16_cc::{compile_to_image_with, BuildError, OptLevel, TargetSpec};
use d16_sim::{
    ChecksumSink, Engine, Machine, PipelineSpec, Predictor, StopReason, FETCH_WIDTHS,
    PIPELINE_DEPTHS,
};

/// Simulator fuel per run — orders of magnitude above what the
/// generator's cost model permits, so exhaustion means a codegen bug that
/// turned a terminating program into a non-terminating one.
pub const SIM_FUEL: u64 = 100_000_000;

/// The extra pipeline configuration oracle 4 re-checks for a case seed.
///
/// Decorrelated seed bits pick depth, predictor, and fetch width, so a
/// budget run walks the whole depth × predictor × width grid while any
/// failing case replays its exact configuration from the seed alone.
#[must_use]
pub fn pipeline_spec_for(seed: u64) -> PipelineSpec {
    PipelineSpec {
        depth: PIPELINE_DEPTHS[(seed % PIPELINE_DEPTHS.len() as u64) as usize],
        predictor: Predictor::ALL[((seed >> 8) % Predictor::ALL.len() as u64) as usize],
        fetch_width_halfwords: FETCH_WIDTHS[((seed >> 16) % FETCH_WIDTHS.len() as u64) as usize],
    }
}

/// The targets × opt levels every program runs on.
pub fn grid() -> Vec<(TargetSpec, OptLevel)> {
    let mut g = Vec::new();
    for spec in d16_core::standard_specs() {
        for opt in [OptLevel::O0, OptLevel::O2] {
            g.push((spec.clone(), opt));
        }
    }
    g
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// A target's exit status disagrees with the reference interpreter.
    WrongValue {
        /// Target label.
        target: String,
        /// Opt level.
        opt: OptLevel,
        /// What the machine returned.
        got: i32,
        /// What the interpreter computed.
        want: i32,
    },
    /// The program failed to compile on one target (the generator only
    /// emits valid Mini-C, so this is a compiler defect).
    Build {
        /// Target label.
        target: String,
        /// Opt level.
        opt: OptLevel,
        /// The error rendered.
        error: String,
    },
    /// The machine did not halt (ran out of fuel or trapped).
    BadStop {
        /// Target label.
        target: String,
        /// Opt level.
        opt: OptLevel,
        /// Description of the stop.
        stop: String,
    },
    /// An instruction word in the compiled image failed the
    /// decode/re-encode round-trip.
    Encoding {
        /// Target label.
        target: String,
        /// Opt level.
        opt: OptLevel,
        /// Byte offset in the text segment.
        offset: usize,
        /// Description.
        detail: String,
    },
    /// The two execution engines disagreed on the same image: stop
    /// result, pipeline statistics, or the access-stream checksum.
    EngineMismatch {
        /// Target label.
        target: String,
        /// Opt level.
        opt: OptLevel,
        /// Which observable diverged, with both sides rendered.
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::WrongValue { target, opt, got, want } => {
                write!(f, "[{target} {opt:?}] exit {got}, reference {want}")
            }
            Divergence::Build { target, opt, error } => {
                write!(f, "[{target} {opt:?}] build failed: {error}")
            }
            Divergence::BadStop { target, opt, stop } => {
                write!(f, "[{target} {opt:?}] did not halt: {stop}")
            }
            Divergence::Encoding { target, opt, offset, detail } => {
                write!(f, "[{target} {opt:?}] encoding roundtrip at text+{offset:#x}: {detail}")
            }
            Divergence::EngineMismatch { target, opt, detail } => {
                write!(f, "[{target} {opt:?}] engines disagree: {detail}")
            }
        }
    }
}

/// Outcome of checking one program.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All oracles agree everywhere.
    Ok,
    /// The program exceeded a static encoding limit (branch reach,
    /// literal-pool displacement) the compiler does not relax; not a
    /// correctness bug. The generator's budgets make this rare.
    TooLarge(String),
    /// An oracle violation, with the source that triggered it.
    Diverged(Box<Divergence>),
}

/// Runs all oracles on a program's source text against a reference value,
/// at the default pipeline configuration.
pub fn check_source(src: &str, reference: i32) -> Outcome {
    check_source_at(src, reference, PipelineSpec::default())
}

/// Runs all oracles on a program's source text against a reference value.
///
/// The engine-agreement oracle always runs at the default pipeline spec
/// (the byte-for-byte historical contract); when `pspec` is non-default
/// it runs a second time at that configuration, which exercises the
/// BlockEngine's dynamic lowering — fusion off, runtime scoreboard,
/// predictor and misfetch accounting — a code path the default-spec
/// comparison never reaches.
pub fn check_source_at(src: &str, reference: i32, pspec: PipelineSpec) -> Outcome {
    for (spec, opt) in grid() {
        let image = match compile_to_image_with(&[src], &spec, opt) {
            Ok(i) => i,
            Err(BuildError::Assemble(e, _)) if is_size_limit(&e.to_string()) => {
                return Outcome::TooLarge(e.to_string());
            }
            Err(e) => {
                return Outcome::Diverged(Box::new(Divergence::Build {
                    target: spec.label(),
                    opt,
                    error: e.to_string(),
                }));
            }
        };
        if let Some(d) = encoding_roundtrip(&spec, opt, &image.text) {
            return Outcome::Diverged(Box::new(d));
        }
        // Oracle 4: run the image under both execution engines and demand
        // identical observable behavior before trusting either for the
        // reference comparison. Stop results are compared through Debug
        // (a SimError's rendered position is part of the contract), the
        // access streams through an order-sensitive checksum.
        let mut m = Machine::load(&image);
        let mut interp_sink = ChecksumSink::default();
        let interp_run = m.run_with(Engine::Interp, SIM_FUEL, &mut interp_sink);
        let mut mb = Machine::load(&image);
        let mut blocks_sink = ChecksumSink::default();
        let blocks_run = mb.run_with(Engine::Blocks, SIM_FUEL, &mut blocks_sink);
        let mismatch = if format!("{interp_run:?}") != format!("{blocks_run:?}") {
            Some(format!("stop: interp {interp_run:?}, blocks {blocks_run:?}"))
        } else if m.stats() != mb.stats() {
            Some(format!("stats: interp {:?}, blocks {:?}", m.stats(), mb.stats()))
        } else if (interp_sink.count(), interp_sink.digest())
            != (blocks_sink.count(), blocks_sink.digest())
        {
            Some(format!(
                "access stream: interp {} accesses digest {:#018x}, blocks {} accesses digest {:#018x}",
                interp_sink.count(),
                interp_sink.digest(),
                blocks_sink.count(),
                blocks_sink.digest()
            ))
        } else {
            None
        };
        if let Some(detail) = mismatch {
            return Outcome::Diverged(Box::new(Divergence::EngineMismatch {
                target: spec.label(),
                opt,
                detail,
            }));
        }
        if pspec != PipelineSpec::default() {
            if let Some(detail) = engine_mismatch_at(&image, pspec) {
                return Outcome::Diverged(Box::new(Divergence::EngineMismatch {
                    target: spec.label(),
                    opt,
                    detail,
                }));
            }
        }
        match interp_run {
            Ok(StopReason::Halted(v)) => {
                if v != reference {
                    return Outcome::Diverged(Box::new(Divergence::WrongValue {
                        target: spec.label(),
                        opt,
                        got: v,
                        want: reference,
                    }));
                }
            }
            Ok(other) => {
                return Outcome::Diverged(Box::new(Divergence::BadStop {
                    target: spec.label(),
                    opt,
                    stop: format!("{other:?}"),
                }));
            }
            Err(e) => {
                return Outcome::Diverged(Box::new(Divergence::BadStop {
                    target: spec.label(),
                    opt,
                    stop: format!("simulator error: {e} at pc {:#x}", m.pc()),
                }));
            }
        }
    }
    Outcome::Ok
}

/// Runs the image under both engines at `pspec` and renders the first
/// disagreeing observable, or `None` when they agree.
fn engine_mismatch_at(image: &d16_asm::Image, pspec: PipelineSpec) -> Option<String> {
    let mut m = Machine::load(image);
    m.set_pipeline(pspec);
    let mut interp_sink = ChecksumSink::default();
    let interp_run = m.run_with(Engine::Interp, SIM_FUEL, &mut interp_sink);
    let mut mb = Machine::load(image);
    mb.set_pipeline(pspec);
    let mut blocks_sink = ChecksumSink::default();
    let blocks_run = mb.run_with(Engine::Blocks, SIM_FUEL, &mut blocks_sink);
    let at = format!(
        "at depth {} predictor {} fetch {}",
        pspec.depth,
        pspec.predictor.name(),
        pspec.fetch_width_halfwords
    );
    if format!("{interp_run:?}") != format!("{blocks_run:?}") {
        return Some(format!("stop {at}: interp {interp_run:?}, blocks {blocks_run:?}"));
    }
    if m.stats() != mb.stats() {
        return Some(format!("stats {at}: interp {:?}, blocks {:?}", m.stats(), mb.stats()));
    }
    if (interp_sink.count(), interp_sink.digest()) != (blocks_sink.count(), blocks_sink.digest()) {
        return Some(format!(
            "access stream {at}: interp {} accesses digest {:#018x}, blocks {} accesses digest {:#018x}",
            interp_sink.count(),
            interp_sink.digest(),
            blocks_sink.count(),
            blocks_sink.digest()
        ));
    }
    None
}

/// Runs all oracles on a generated program, using the interpreter for the
/// reference value.
pub fn check(prog: &Prog) -> Outcome {
    check_at(prog, PipelineSpec::default())
}

/// [`check`] with an extra engine-agreement pass at `pspec` (see
/// [`check_source_at`]).
pub fn check_at(prog: &Prog, pspec: PipelineSpec) -> Outcome {
    let reference = match interp::run(prog) {
        Ok(v) => v,
        // Fuel exhaustion means the generator's cost model failed, not a
        // compiler bug; treat like an oversized program.
        Err(e) => return Outcome::TooLarge(format!("interpreter: {e:?}")),
    };
    check_source_at(&prog.to_c(), reference, pspec)
}

/// Whether an assembler diagnostic is a static size/reach limit rather
/// than a correctness failure.
fn is_size_limit(msg: &str) -> bool {
    msg.contains("out of range") || msg.contains("does not fit")
}

/// Decode/re-encode every instruction of a DLXe or D16x text segment.
/// D16 images are skipped here: their text interleaves literal-pool
/// *data* words with instructions (`ldc` is PC-relative into text), which
/// cannot be told apart without layout metadata — the D16 word space is
/// instead covered completely by the exhaustive `isa`/`asm` tests. DLXe
/// and D16x materialize constants with `mvhi`/`ori`, so their text is
/// pure instructions; D16x is walked by each instruction's own
/// length-decoded size, which also exercises the `insn_len` boundary rule
/// on exactly the streams real codegen emits.
fn encoding_roundtrip(spec: &TargetSpec, opt: OptLevel, text: &[u8]) -> Option<Divergence> {
    use d16_isa::{d16x, dlxe, Isa};
    match spec.isa {
        Isa::D16 => None,
        Isa::Dlxe => {
            for (k, ch) in text.chunks_exact(4).enumerate() {
                let w = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
                let detail = match dlxe::decode(w) {
                    Ok(insn) => match dlxe::encode(&insn) {
                        // Codegen emits canonical words, so byte identity
                        // holds on real output even though the DLXe
                        // decoder accepts redundant shapes.
                        Ok(w2) if w2 == w => continue,
                        Ok(w2) => format!("{w:#010x} -> {insn:?} -> {w2:#010x}"),
                        Err(e) => format!("{w:#010x} -> {insn:?} re-encode failed: {e}"),
                    },
                    Err(e) => format!("emitted word {w:#010x} does not decode: {e}"),
                };
                return Some(Divergence::Encoding {
                    target: spec.label(),
                    opt,
                    offset: k * 4,
                    detail,
                });
            }
            None
        }
        Isa::D16x => {
            let mut o = 0usize;
            while o + 1 < text.len() {
                let first = u16::from_le_bytes([text[o], text[o + 1]]);
                let len = d16x::insn_len(first) as usize;
                let second = if len == 4 {
                    if o + 3 >= text.len() {
                        return Some(Divergence::Encoding {
                            target: spec.label(),
                            opt,
                            offset: o,
                            detail: format!("escape halfword {first:#06x} truncated at text end"),
                        });
                    }
                    Some(u16::from_le_bytes([text[o + 2], text[o + 3]]))
                } else {
                    None
                };
                let detail = match d16x::decode(first, second) {
                    // The narrow-first encoder plus the canonicality rule
                    // (wide patterns expressible narrow are Illegal) make
                    // decode -> encode the byte identity on legal streams.
                    Ok((insn, dlen)) => match d16x::encode(&insn) {
                        Ok(enc) if enc.len() == dlen && enc.to_bytes() == text[o..o + len] => {
                            o += len;
                            continue;
                        }
                        Ok(enc) => format!("{insn:?} re-encoded to {enc:?}, not the emitted bytes"),
                        Err(e) => format!("{insn:?} re-encode failed: {e}"),
                    },
                    Err(e) => format!("emitted instruction at {first:#06x} does not decode: {e}"),
                };
                return Some(Divergence::Encoding { target: spec.label(), opt, offset: o, detail });
            }
            None
        }
    }
}
