//! The delta-reducing shrinker.
//!
//! Greedy structural reduction to a fixpoint: repeatedly propose a
//! simpler program and keep it iff the oracle still reports a divergence
//! (any divergence — a minimized reproducer that surfaces a *different*
//! bug is just as valuable). Passes, in order of coarseness:
//!
//! 1. drop whole helper functions (rewriting their call sites to `x = 0;`)
//! 2. drop statements, one at a time, innermost blocks last
//! 3. replace loop statements with their bodies (run once)
//! 4. simplify expressions: replace by a subexpression or a literal
//! 5. simplify global initializers to plain literals; drop globals/arrays
//!    is left to pass 1's call-site rewriting plus dead-code neutrality —
//!    unreferenced declarations are harmless in a reproducer
//! 6. shrink literals toward zero
//!
//! Every accepted candidate strictly reduces a size metric, so the loop
//! terminates; a step budget bounds the worst case anyway.

use crate::ast::{CExpr, Expr, LValue, Prog, Stmt};
use crate::oracle::{check_at, Outcome};
use d16_sim::PipelineSpec;

/// Upper bound on oracle evaluations during minimization.
const BUDGET: usize = 3_000;

/// Minimizes `prog` while the oracle keeps reporting a divergence,
/// re-checking every candidate at the same pipeline configuration the
/// original case ran under (a divergence that only manifests at a
/// non-default spec would otherwise evaporate mid-shrink). Returns the
/// smallest divergent program found.
pub fn minimize(mut prog: Prog, pspec: PipelineSpec) -> Prog {
    let mut budget = BUDGET;
    let still_bad = |p: &Prog, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        matches!(check_at(p, pspec), Outcome::Diverged(_))
    };

    loop {
        let before = size(&prog);

        // Pass 1: drop helper functions (highest index first, so callers
        // of dropped functions are themselves candidates next round).
        for i in (0..prog.funcs.len()).rev() {
            let mut cand = prog.clone();
            cand.funcs.remove(i);
            for f in cand.funcs.iter_mut().skip(i).chain(std::iter::once(&mut cand.main)) {
                retarget_calls(&mut f.body, i);
            }
            // Calls into the removed function from lower-indexed helpers
            // cannot exist (acyclic by construction), but their indices
            // are unchanged; only higher ones shifted down.
            if still_bad(&cand, &mut budget) {
                prog = cand;
            }
        }

        // Pass 2 + 3: statement-level reduction per function.
        for fi in 0..=prog.funcs.len() {
            loop {
                let body = body_of(&prog, fi).clone();
                let mut improved = false;
                let mut paths = Vec::new();
                collect_stmt_paths(&body, &mut Vec::new(), &mut paths);
                // Longest (innermost) paths first: removing a leaf keeps
                // outer structure valid.
                paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
                for path in paths {
                    let mut cand = prog.clone();
                    if remove_stmt(body_of_mut(&mut cand, fi), &path).is_none() {
                        continue;
                    }
                    if still_bad(&cand, &mut budget) {
                        prog = cand;
                        improved = true;
                        break;
                    }
                    // Loops: also try replacing the loop with its body.
                    let mut cand = prog.clone();
                    if unroll_once(body_of_mut(&mut cand, fi), &path)
                        && still_bad(&cand, &mut budget)
                    {
                        prog = cand;
                        improved = true;
                        break;
                    }
                }
                if !improved || budget == 0 {
                    break;
                }
            }
        }

        // Pass 4 + 6: expression simplification per function.
        for fi in 0..=prog.funcs.len() {
            let mut site = 0;
            loop {
                let nsites = count_expr_sites(body_of(&prog, fi));
                if site >= nsites {
                    break;
                }
                let mut replaced = false;
                for alt in expr_alternatives(body_of(&prog, fi), site) {
                    let mut cand = prog.clone();
                    replace_expr_site(body_of_mut(&mut cand, fi), site, alt);
                    if size(&cand) < size(&prog) && still_bad(&cand, &mut budget) {
                        prog = cand;
                        replaced = true;
                        break;
                    }
                }
                if !replaced {
                    site += 1;
                }
                if budget == 0 {
                    break;
                }
            }
        }

        // Pass 5: flatten global initializers to their folded literal, or
        // to zero.
        for gi in 0..prog.globals.len() {
            if matches!(prog.globals[gi], CExpr::Lit(0)) {
                continue;
            }
            for v in [0, crate::interp::eval_cexpr(&prog.globals[gi])] {
                if matches!(prog.globals[gi], CExpr::Lit(x) if x == v) {
                    continue;
                }
                let mut cand = prog.clone();
                cand.globals[gi] = CExpr::Lit(v);
                if still_bad(&cand, &mut budget) {
                    prog = cand;
                    break;
                }
            }
        }

        if size(&prog) >= before || budget == 0 {
            return prog;
        }
    }
}

/// A rough size metric: nodes in the whole program.
fn size(p: &Prog) -> usize {
    let mut n = 0;
    for g in &p.globals {
        n += cexpr_size(g);
    }
    n += p.arrays.len();
    for f in p.funcs.iter().chain(std::iter::once(&p.main)) {
        n += 1 + f.local_arrays.len() + f.ptrs.len();
        n += stmts_size(&f.body);
    }
    n
}

fn cexpr_size(e: &CExpr) -> usize {
    match e {
        CExpr::Lit(v) => {
            if *v == 0 {
                1
            } else {
                2
            }
        }
        CExpr::Un(_, a) => 1 + cexpr_size(a),
        CExpr::Bin(_, a, b) => 1 + cexpr_size(a) + cexpr_size(b),
    }
}

fn stmts_size(b: &[Stmt]) -> usize {
    b.iter().map(stmt_size).sum()
}

fn stmt_size(s: &Stmt) -> usize {
    match s {
        Stmt::Assign(lv, e) => {
            1 + expr_size(e)
                + match lv {
                    LValue::Index(_, i) => expr_size(i),
                    _ => 0,
                }
        }
        Stmt::CallAssign(_, _, args) => 1 + args.iter().map(expr_size).sum::<usize>(),
        Stmt::If(c, t, e) => 1 + expr_size(c) + stmts_size(t) + stmts_size(e),
        Stmt::For { body, .. } | Stmt::While { body, .. } => 2 + stmts_size(body),
        Stmt::Break => 1,
        Stmt::Ret(e) => 1 + expr_size(e),
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Lit(v) => {
            if *v == 0 {
                1
            } else {
                2
            }
        }
        Expr::Local(_) | Expr::Param(_) | Expr::LoopVar(_) | Expr::Global(_) => 2,
        Expr::Index(_, i) => 3 + expr_size(i),
        Expr::Un(_, a) => 1 + expr_size(a),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::Logic(_, a, b) => {
            1 + expr_size(a) + expr_size(b)
        }
    }
}

fn body_of(p: &Prog, fi: usize) -> &Vec<Stmt> {
    if fi < p.funcs.len() {
        &p.funcs[fi].body
    } else {
        &p.main.body
    }
}

fn body_of_mut(p: &mut Prog, fi: usize) -> &mut Vec<Stmt> {
    if fi < p.funcs.len() {
        &mut p.funcs[fi].body
    } else {
        &mut p.main.body
    }
}

/// Rewrites calls after function `removed` was deleted: calls to it
/// become `x = 0;`, calls to higher indices shift down by one.
fn retarget_calls(body: &mut Vec<Stmt>, removed: usize) {
    for st in body {
        match st {
            Stmt::CallAssign(dst, idx, _) => {
                if *idx == removed {
                    *st = Stmt::Assign(LValue::Local(*dst), Expr::Lit(0));
                } else if *idx > removed {
                    *idx -= 1;
                }
            }
            Stmt::If(_, t, e) => {
                retarget_calls(t, removed);
                retarget_calls(e, removed);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => retarget_calls(body, removed),
            _ => {}
        }
    }
}

/// Paths identify a statement by index chain through nested blocks. Each
/// element is (index-in-block, which-subblock-to-descend): 0 = the
/// statement itself at that index, 1 = then/loop-body, 2 = else.
type Path = Vec<(usize, u8)>;

fn collect_stmt_paths(block: &[Stmt], prefix: &mut Path, out: &mut Vec<Path>) {
    for (i, st) in block.iter().enumerate() {
        let mut here = prefix.clone();
        here.push((i, 0));
        out.push(here);
        match st {
            Stmt::If(_, t, e) => {
                prefix.push((i, 1));
                collect_stmt_paths(t, prefix, out);
                prefix.pop();
                prefix.push((i, 2));
                collect_stmt_paths(e, prefix, out);
                prefix.pop();
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                prefix.push((i, 1));
                collect_stmt_paths(body, prefix, out);
                prefix.pop();
            }
            _ => {}
        }
    }
}

fn subblock_mut(block: &mut [Stmt], step: (usize, u8)) -> Option<&mut Vec<Stmt>> {
    let (i, which) = step;
    match block.get_mut(i)? {
        Stmt::If(_, t, e) => Some(if which == 1 { t } else { e }),
        Stmt::For { body, .. } | Stmt::While { body, .. } if which == 1 => Some(body),
        _ => None,
    }
}

fn remove_stmt(block: &mut Vec<Stmt>, path: &Path) -> Option<Stmt> {
    let (last, steps) = path.split_last()?;
    let mut b = block;
    for step in steps {
        b = subblock_mut(b, *step)?;
    }
    let (i, _) = *last;
    if i < b.len() {
        // Never remove the final `Ret` of a top-level body; the
        // interpreter tolerates it but it shrinks poorly.
        Some(b.remove(i))
    } else {
        None
    }
}

/// Replaces a loop at `path` with its body, to run exactly once.
fn unroll_once(block: &mut Vec<Stmt>, path: &Path) -> bool {
    let Some((last, steps)) = path.split_last() else { return false };
    let mut b = block;
    for step in steps {
        match subblock_mut(b, *step) {
            Some(x) => b = x,
            None => return false,
        }
    }
    let (i, _) = *last;
    match b.get(i) {
        Some(Stmt::For { body, .. }) | Some(Stmt::While { body, .. }) => {
            // A `break` at the hoisted level would land outside any loop
            // — invalid C the oracle would mistake for a compiler bug.
            if has_loose_break(body) {
                return false;
            }
            let inner = body.clone();
            b.splice(i..=i, inner);
            true
        }
        _ => false,
    }
}

/// Whether a block contains a `break` not enclosed by a nested loop.
fn has_loose_break(block: &[Stmt]) -> bool {
    block.iter().any(|st| match st {
        Stmt::Break => true,
        Stmt::If(_, t, e) => has_loose_break(t) || has_loose_break(e),
        _ => false,
    })
}

/// Expression "sites" are every `Expr` slot in a body, numbered in
/// traversal order; `count`, `get alternatives`, and `replace` all use
/// the same traversal so indices agree.
fn count_expr_sites(body: &[Stmt]) -> usize {
    let mut n = 0;
    for st in body {
        visit_stmt_exprs(st, &mut |_| n += 1);
    }
    n
}

fn visit_stmt_exprs(st: &Stmt, f: &mut impl FnMut(&Expr)) {
    match st {
        Stmt::Assign(lv, e) => {
            if let LValue::Index(_, i) = lv {
                visit_expr(i, f);
            }
            visit_expr(e, f);
        }
        Stmt::CallAssign(_, _, args) => {
            for a in args {
                visit_expr(a, f);
            }
        }
        Stmt::If(c, t, e) => {
            visit_expr(c, f);
            for st in t {
                visit_stmt_exprs(st, f);
            }
            for st in e {
                visit_stmt_exprs(st, f);
            }
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => {
            for st in body {
                visit_stmt_exprs(st, f);
            }
        }
        Stmt::Break => {}
        Stmt::Ret(e) => visit_expr(e, f),
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Index(_, i) => visit_expr(i, f),
        Expr::Un(_, a) => visit_expr(a, f),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::Logic(_, a, b) => {
            visit_expr(a, f);
            visit_expr(b, f);
        }
        _ => {}
    }
}

/// Smaller candidate replacements for expression site `site`.
fn expr_alternatives(body: &[Stmt], site: usize) -> Vec<Expr> {
    let mut n = 0;
    let mut found: Option<Expr> = None;
    for st in body {
        visit_stmt_exprs(st, &mut |e| {
            if n == site && found.is_none() {
                found = Some(e.clone());
            }
            n += 1;
        });
    }
    let Some(e) = found else { return Vec::new() };
    let mut alts = Vec::new();
    match &e {
        Expr::Lit(v) => {
            for cand in [0, 1, v / 2, v >> 16] {
                if cand != *v {
                    alts.push(Expr::Lit(cand));
                }
            }
        }
        Expr::Un(_, a) => alts.push((**a).clone()),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::Logic(_, a, b) => {
            alts.push((**a).clone());
            alts.push((**b).clone());
            alts.push(Expr::Lit(0));
            alts.push(Expr::Lit(1));
        }
        Expr::Index(..) => alts.push(Expr::Lit(0)),
        _ => alts.push(Expr::Lit(0)),
    }
    alts
}

fn replace_expr_site(body: &mut [Stmt], site: usize, with: Expr) {
    let mut n = 0;
    for st in body {
        replace_in_stmt(st, site, &with, &mut n);
    }
}

fn replace_in_stmt(st: &mut Stmt, site: usize, with: &Expr, n: &mut usize) {
    match st {
        Stmt::Assign(lv, e) => {
            if let LValue::Index(_, i) = lv {
                replace_in_expr(i, site, with, n);
            }
            replace_in_expr(e, site, with, n);
        }
        Stmt::CallAssign(_, _, args) => {
            for a in args {
                replace_in_expr(a, site, with, n);
            }
        }
        Stmt::If(c, t, e) => {
            replace_in_expr(c, site, with, n);
            for st in t {
                replace_in_stmt(st, site, with, n);
            }
            for st in e {
                replace_in_stmt(st, site, with, n);
            }
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => {
            for st in body {
                replace_in_stmt(st, site, with, n);
            }
        }
        Stmt::Break => {}
        Stmt::Ret(e) => replace_in_expr(e, site, with, n),
    }
}

fn replace_in_expr(e: &mut Expr, site: usize, with: &Expr, n: &mut usize) {
    if *n == site {
        *n += 1;
        *e = with.clone();
        return;
    }
    *n += 1;
    match e {
        Expr::Index(_, i) => replace_in_expr(i, site, with, n),
        Expr::Un(_, a) => replace_in_expr(a, site, with, n),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) | Expr::Logic(_, a, b) => {
            replace_in_expr(a, site, with, n);
            replace_in_expr(b, site, with, n);
        }
        _ => {}
    }
}
