//! Differential-fuzzing CLI.
//!
//! ```text
//! d16-fuzz --seed 1 --count 500          # fixed-seed budget run
//! d16-fuzz --seed 1 --count 1 --emit     # print the generated program
//! d16-fuzz --replay crates/xtests/corpus # re-check committed reproducers
//! ```
//!
//! Exit status: 0 when every oracle agreed, 1 on any divergence, 2 on
//! usage or I/O errors.

use d16_fuzz::{case_seed, oracle, run_case, CaseResult};
use d16_testkit::Rng;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    seed: u64,
    count: u64,
    emit: bool,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seed: 1, count: 100, emit: false, replay: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--count" => {
                let v = it.next().ok_or("--count needs a value")?;
                args.count = v.parse().map_err(|_| format!("bad count: {v}"))?;
            }
            "--emit" => args.emit = true,
            "--replay" => {
                args.replay = Some(it.next().ok_or("--replay needs a directory")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: d16-fuzz [--seed S] [--count N] [--emit] [--replay DIR]".to_string()
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = &args.replay {
        return replay(Path::new(dir));
    }
    budget_run(&args)
}

fn budget_run(args: &Args) -> ExitCode {
    let grid = oracle::grid().len();
    println!(
        "d16-fuzz: seed {} count {} ({} target/opt combinations per case)",
        args.seed, args.count, grid
    );
    let (mut ok, mut skipped) = (0u64, 0u64);
    let mut failed = Vec::new();
    for case in 0..args.count {
        let seed = case_seed(args.seed, case);
        if args.emit {
            let mut rng = Rng::new(seed);
            let prog = d16_fuzz::gen::program(&mut rng);
            println!("// case {case} seed {seed:#x}");
            println!("{}", prog.to_c());
            continue;
        }
        match run_case(seed) {
            CaseResult::Ok => ok += 1,
            CaseResult::Skipped(why) => {
                skipped += 1;
                eprintln!("case {case}: skipped ({why})");
            }
            CaseResult::Failed { source, reference, divergence } => {
                eprintln!("case {case} (seed {seed:#x}): DIVERGENCE {divergence}");
                eprintln!("minimized reproducer (expect: {reference}):");
                eprintln!("{source}");
                failed.push(case);
            }
        }
        if (case + 1) % 100 == 0 {
            println!("  .. {}/{} cases", case + 1, args.count);
        }
    }
    if args.emit {
        return ExitCode::SUCCESS;
    }
    println!(
        "d16-fuzz: {ok} ok, {skipped} skipped, {} diverged of {} cases",
        failed.len(),
        args.count
    );
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!("failing cases: {failed:?}");
        ExitCode::FAILURE
    }
}

/// Re-checks every committed reproducer: each `.c` file in `dir` carries
/// an `// expect: N` header giving its reference exit status; all targets
/// and opt levels must produce exactly that value.
fn replay(dir: &Path) -> ExitCode {
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect(),
        Err(e) => {
            eprintln!("d16-fuzz: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    entries.sort();
    if entries.is_empty() {
        eprintln!("d16-fuzz: no .c files in {}", dir.display());
        return ExitCode::from(2);
    }
    let mut bad = 0usize;
    for path in &entries {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("d16-fuzz: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let Some(expect) = expected_value(&src) else {
            eprintln!("{}: missing `// expect: N` header", path.display());
            bad += 1;
            continue;
        };
        match oracle::check_source(&src, expect) {
            oracle::Outcome::Ok => println!("{}: ok (expect {expect})", path.display()),
            oracle::Outcome::TooLarge(why) => {
                eprintln!("{}: did not fit: {why}", path.display());
                bad += 1;
            }
            oracle::Outcome::Diverged(d) => {
                eprintln!("{}: DIVERGENCE {d}", path.display());
                bad += 1;
            }
        }
    }
    println!("d16-fuzz: replayed {} reproducers, {bad} failed", entries.len());
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses the `// expect: N` header of a corpus file.
fn expected_value(src: &str) -> Option<i32> {
    for line in src.lines() {
        if let Some(rest) = line.trim().strip_prefix("// expect:") {
            return rest.trim().parse().ok();
        }
    }
    None
}
