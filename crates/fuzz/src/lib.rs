//! Cross-ISA differential fuzzer for the d16 toolchain.
//!
//! Generates whole Mini-C programs ([`gen`]), computes a reference value
//! with an AST interpreter built on the normative [`d16_isa::sem`]
//! contract ([`interp`]), and checks three oracles on every target ×
//! opt-level combination ([`oracle`]): reference agreement, cross-target
//! agreement, and instruction-encoding round-trip. Failures are
//! auto-minimized by a delta-reducing shrinker ([`shrink`]) into small
//! `.c` reproducers suitable for committing to `crates/xtests/corpus/`.
//!
//! Determinism: everything is keyed off a single `u64` seed. Case `i` of
//! a budget run uses [`case_seed`]`(seed, i)`, so any failing case can be
//! re-run in isolation.

pub mod ast;
pub mod gen;
pub mod interp;
pub mod oracle;
pub mod shrink;

use d16_testkit::Rng;

/// The seed for case `case` of a budget run started from `seed`.
///
/// SplitMix64-style finalizer so consecutive cases get decorrelated
/// streams.
#[must_use]
pub fn case_seed(seed: u64, case: u64) -> u64 {
    let mut z = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The result of one fuzz case.
#[derive(Clone, Debug)]
pub enum CaseResult {
    /// All oracles agreed.
    Ok,
    /// The program tripped a static size limit or the interpreter fuel
    /// cap; skipped, not a failure.
    Skipped(String),
    /// An oracle violation, with the minimized reproducer.
    Failed {
        /// The minimized source.
        source: String,
        /// The interpreter's value for the minimized source.
        reference: i32,
        /// The divergence on the minimized source.
        divergence: oracle::Divergence,
    },
}

/// Generates, checks, and (on failure) minimizes one case.
///
/// Besides the default-spec oracles, each case re-runs the engine
/// agreement check at one pipeline configuration derived from the seed
/// ([`oracle::pipeline_spec_for`]), so a budget run sweeps the
/// depth × predictor × fetch-width grid for free.
#[must_use]
pub fn run_case(seed: u64) -> CaseResult {
    let mut rng = Rng::new(seed);
    let prog = gen::program(&mut rng);
    let pspec = oracle::pipeline_spec_for(seed);
    match oracle::check_at(&prog, pspec) {
        oracle::Outcome::Ok => CaseResult::Ok,
        oracle::Outcome::TooLarge(why) => CaseResult::Skipped(why),
        oracle::Outcome::Diverged(_) => {
            let small = shrink::minimize(prog, pspec);
            let reference = interp::run(&small).unwrap_or(0);
            let divergence = match oracle::check_at(&small, pspec) {
                oracle::Outcome::Diverged(d) => *d,
                // The shrinker only accepts divergent candidates, so the
                // final program must still diverge; defend anyway.
                _ => oracle::Divergence::Build {
                    target: "?".into(),
                    opt: d16_cc::OptLevel::O2,
                    error: "shrinker lost the divergence".into(),
                },
            };
            CaseResult::Failed { source: small.to_c(), reference, divergence }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_decorrelated() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(1, 0));
    }

    #[test]
    fn generator_interpreter_and_targets_agree_on_a_smoke_batch() {
        let mut failures = Vec::new();
        for case in 0..12 {
            match run_case(case_seed(0xd16f_u64, case)) {
                CaseResult::Ok | CaseResult::Skipped(_) => {}
                CaseResult::Failed { source, divergence, .. } => {
                    failures.push(format!("case {case}: {divergence}\n{source}"));
                }
            }
        }
        assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n---\n"));
    }

    #[test]
    fn shrinker_keeps_a_healthy_program_intact() {
        // minimize() only accepts candidates that still diverge; on a
        // correct program no candidate is ever kept, so it must return
        // the input unchanged (and terminate).
        use ast::{CExpr, Expr, Func, LValue, Prog, Stmt};
        let prog = Prog {
            globals: vec![CExpr::Lit(3)],
            arrays: vec![4],
            funcs: Vec::new(),
            main: Func {
                nparams: 0,
                nlocals: 1,
                nloopvars: 1,
                local_arrays: Vec::new(),
                ptrs: Vec::new(),
                body: vec![
                    Stmt::For {
                        var: 0,
                        count: 3,
                        body: vec![Stmt::Assign(
                            LValue::Local(0),
                            Expr::Bin(
                                ast::BOp::Add,
                                Box::new(Expr::Local(0)),
                                Box::new(Expr::LoopVar(0)),
                            ),
                        )],
                    },
                    Stmt::Ret(Expr::Bin(
                        ast::BOp::Add,
                        Box::new(Expr::Local(0)),
                        Box::new(Expr::Global(0)),
                    )),
                ],
            },
        };
        assert_eq!(interp::run(&prog), Ok(6));
        let small = shrink::minimize(prog.clone(), d16_sim::PipelineSpec::default());
        assert_eq!(small.to_c(), prog.to_c());
    }

    #[test]
    fn seeded_pipeline_specs_are_deterministic_and_cover_the_grid() {
        use std::collections::HashSet;
        assert_eq!(oracle::pipeline_spec_for(7), oracle::pipeline_spec_for(7));
        let distinct: HashSet<_> = (0..512u64)
            .map(|s| {
                let p = oracle::pipeline_spec_for(case_seed(1, s));
                assert!(p.validate().is_ok(), "seeded spec invalid: {p:?}");
                (p.depth, p.predictor.name(), p.fetch_width_halfwords)
            })
            .collect();
        // 6 depths × 3 predictors × 3 widths = 54 cells; 512 decorrelated
        // seeds must reach them all, including the default cell.
        assert_eq!(distinct.len(), 54, "grid coverage: {}", distinct.len());
    }
}
