//! The reference interpreter: executes a generated [`Prog`] directly on
//! the AST with the machine's documented semantics ([`d16_isa::sem`]).
//!
//! This is oracle #1 of the differential harness. It shares *no* code
//! with the compiler's constant folder or the simulator's ALU beyond the
//! one normative `sem` module, so a divergence between interpreter and
//! machine is a genuine disagreement about program meaning, not a shared
//! bug. Fuel-limited as a backstop, although generated programs terminate
//! by construction.

use crate::ast::{ArrRef, BOp, CExpr, COp, Expr, Func, LValue, Prog, PtrTarget, Stmt, UOp};
use d16_isa::sem;

/// Abstract-step budget: generated programs stay far below this (the
/// generator's cost model caps dynamic work), so exhaustion indicates a
/// generator bug rather than a long-running program.
pub const FUEL: u64 = 20_000_000;

/// Why interpretation stopped without a value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// The fuel budget ran out.
    OutOfFuel,
}

struct Frame {
    params: Vec<i32>,
    locals: Vec<i32>,
    loopvars: Vec<i32>,
    arrays: Vec<Vec<i32>>,
}

enum Flow {
    Normal,
    Broke,
    Returned(i32),
}

struct Interp<'a> {
    prog: &'a Prog,
    globals: Vec<i32>,
    garrays: Vec<Vec<i32>>,
    fuel: u64,
}

/// Runs a program and returns `main`'s value — the machine exit status.
///
/// # Errors
///
/// [`InterpError::OutOfFuel`] if the step budget is exhausted.
pub fn run(prog: &Prog) -> Result<i32, InterpError> {
    let globals = prog.globals.iter().map(eval_cexpr).collect();
    let garrays = prog.arrays.iter().map(|&len| vec![0i32; len as usize]).collect();
    let mut it = Interp { prog, globals, garrays, fuel: FUEL };
    match it.call(&prog.main, Vec::new())? {
        Flow::Returned(v) => Ok(v),
        // A function body always ends in `Ret`, but a shrunk program may
        // have lost it; fall back to 0 like a C `main` without a return.
        _ => Ok(0),
    }
}

/// Evaluates a constant initializer — the reference for what the
/// compiler's global-initializer folder must produce.
pub fn eval_cexpr(e: &CExpr) -> i32 {
    match e {
        CExpr::Lit(v) => *v,
        CExpr::Un("-", a) => sem::sub(0, eval_cexpr(a)),
        CExpr::Un(_, a) => !eval_cexpr(a),
        CExpr::Bin(op, a, b) => {
            let (a, b) = (eval_cexpr(a), eval_cexpr(b));
            match *op {
                "+" => sem::add(a, b),
                "-" => sem::sub(a, b),
                "*" => sem::mul(a, b),
                "/" => sem::div(a, b),
                "%" => sem::rem(a, b),
                "<<" => sem::shl(a, b),
                ">>" => sem::sar(a, b),
                "&" => a & b,
                "|" => a | b,
                _ => a ^ b,
            }
        }
    }
}

impl<'a> Interp<'a> {
    fn call(&mut self, f: &'a Func, params: Vec<i32>) -> Result<Flow, InterpError> {
        let mut frame = Frame {
            params,
            locals: vec![0; f.nlocals],
            loopvars: vec![0; f.nloopvars],
            arrays: f.local_arrays.iter().map(|&len| vec![0i32; len as usize]).collect(),
        };
        self.exec_block(f, &mut frame, &f.body)
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        if self.fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        f: &'a Func,
        fr: &mut Frame,
        stmts: &'a [Stmt],
    ) -> Result<Flow, InterpError> {
        for st in stmts {
            match self.exec(f, fr, st)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, f: &'a Func, fr: &mut Frame, st: &'a Stmt) -> Result<Flow, InterpError> {
        self.tick()?;
        match st {
            Stmt::Assign(lv, e) => {
                let v = self.eval(f, fr, e)?;
                match lv {
                    LValue::Local(i) => fr.locals[*i] = v,
                    LValue::Global(i) => self.globals[*i] = v,
                    LValue::Index(r, idx) => {
                        let i = self.index(f, fr, *r, idx)?;
                        *self.slot(f, fr, *r, i) = v;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::CallAssign(dst, func, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(f, fr, a)?);
                }
                let callee = &self.prog.funcs[*func];
                let v = match self.call(callee, vals)? {
                    Flow::Returned(v) => v,
                    _ => 0,
                };
                fr.locals[*dst] = v;
                Ok(Flow::Normal)
            }
            Stmt::If(c, t, e) => {
                if self.eval(f, fr, c)? != 0 {
                    self.exec_block(f, fr, t)
                } else {
                    self.exec_block(f, fr, e)
                }
            }
            Stmt::For { var, count, body } => {
                fr.loopvars[*var] = 0;
                while fr.loopvars[*var] < *count {
                    self.tick()?;
                    match self.exec_block(f, fr, body)? {
                        Flow::Normal => {}
                        Flow::Broke => break,
                        ret @ Flow::Returned(_) => return Ok(ret),
                    }
                    fr.loopvars[*var] += 1;
                }
                Ok(Flow::Normal)
            }
            Stmt::While { var, count, body } => {
                fr.loopvars[*var] = *count;
                while fr.loopvars[*var] > 0 {
                    self.tick()?;
                    fr.loopvars[*var] -= 1;
                    match self.exec_block(f, fr, body)? {
                        Flow::Normal => {}
                        Flow::Broke => break,
                        ret @ Flow::Returned(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Broke),
            Stmt::Ret(e) => {
                let v = self.eval(f, fr, e)?;
                Ok(Flow::Returned(v))
            }
        }
    }

    /// The masked element index for an access.
    fn index(
        &mut self,
        f: &'a Func,
        fr: &mut Frame,
        r: ArrRef,
        idx: &'a Expr,
    ) -> Result<usize, InterpError> {
        let mask = (self.prog.arr_len(f, r) - 1) as i32;
        Ok((self.eval(f, fr, idx)? & mask) as usize)
    }

    fn slot<'b>(&'b mut self, f: &Func, fr: &'b mut Frame, r: ArrRef, i: usize) -> &'b mut i32 {
        match r {
            ArrRef::GlobalArr(g) => &mut self.garrays[g][i],
            ArrRef::LocalArr(l) => &mut fr.arrays[l][i],
            ArrRef::Ptr(p) => match f.ptrs[p] {
                PtrTarget::GlobalArr(g) => &mut self.garrays[g][i],
                PtrTarget::LocalArr(l) => &mut fr.arrays[l][i],
            },
        }
    }

    fn eval(&mut self, f: &'a Func, fr: &mut Frame, e: &'a Expr) -> Result<i32, InterpError> {
        self.tick()?;
        Ok(match e {
            Expr::Lit(v) => *v,
            Expr::Local(i) => fr.locals[*i],
            Expr::Param(i) => fr.params[*i],
            Expr::LoopVar(i) => fr.loopvars[*i],
            Expr::Global(i) => self.globals[*i],
            Expr::Index(r, idx) => {
                let i = self.index(f, fr, *r, idx)?;
                *self.slot(f, fr, *r, i)
            }
            Expr::Un(op, a) => {
                let a = self.eval(f, fr, a)?;
                match op {
                    UOp::Neg => sem::sub(0, a),
                    UOp::Not => !a,
                    UOp::LNot => i32::from(a == 0),
                }
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval(f, fr, a)?;
                let b = self.eval(f, fr, b)?;
                match op {
                    BOp::Add => sem::add(a, b),
                    BOp::Sub => sem::sub(a, b),
                    BOp::Mul => sem::mul(a, b),
                    BOp::Div => sem::div(a, b),
                    BOp::Rem => sem::rem(a, b),
                    BOp::Shl => sem::shl(a, b),
                    BOp::Sar => sem::sar(a, b),
                    BOp::And => a & b,
                    BOp::Or => a | b,
                    BOp::Xor => a ^ b,
                }
            }
            Expr::Cmp(op, a, b) => {
                let a = self.eval(f, fr, a)?;
                let b = self.eval(f, fr, b)?;
                i32::from(match op {
                    COp::Eq => a == b,
                    COp::Ne => a != b,
                    COp::Lt => a < b,
                    COp::Le => a <= b,
                    COp::Gt => a > b,
                    COp::Ge => a >= b,
                })
            }
            Expr::Logic(and, a, b) => {
                // Short-circuit like C; operands are pure, so this only
                // matters for fuel accounting.
                let a = self.eval(f, fr, a)?;
                if *and {
                    if a == 0 {
                        0
                    } else {
                        i32::from(self.eval(f, fr, b)? != 0)
                    }
                } else if a != 0 {
                    1
                } else {
                    i32::from(self.eval(f, fr, b)? != 0)
                }
            }
        })
    }
}
