//! The whole-program generator.
//!
//! Grammar coverage: nested `if`/`while`/`for` (with guarded `break`),
//! function calls of varying arity through an acyclic call graph, global
//! and local arrays, pointers to array bases, and expression trees biased
//! toward the div/rem/shift edge cases the machine contract defines
//! (`d16_isa::sem`). Global scalars get constant-expression initializers,
//! exercising the compiler's initializer folder against the same edges.
//!
//! Two budgets shape every program:
//!
//! * a **size** budget keeps any single straight-line block small enough
//!   that D16's ±1 KiB conditional-branch reach is never exceeded, even
//!   at `O0` where nothing is folded away;
//! * a **cost** model bounds *dynamic* work: each statement is charged
//!   its estimated execution count (enclosing loop trip counts multiply,
//!   and a call site is charged its callee's whole cost), so a chain of
//!   calls inside nested loops cannot compound into an unbounded run.

use crate::ast::{ArrRef, BOp, CExpr, COp, Expr, Func, LValue, Prog, PtrTarget, Stmt, UOp};
use d16_testkit::Rng;

/// Interesting literals: shift-count and overflow edges, masks, and the
/// boundaries of D16's immediate fields (5-bit ALU, 9-bit mvi).
const EDGE: [i32; 18] = [
    0,
    1,
    -1,
    2,
    3,
    7,
    15,
    16,
    31,
    32,
    33,
    -31,
    255,
    256,
    -256,
    i32::MAX,
    i32::MIN,
    0x5555_5555u32 as i32,
];

/// Per-function cap on estimated dynamic statement executions.
const FUNC_COST_CAP: u64 = 6_000;
/// Cap for `main` (which additionally pays each callee's cost).
const MAIN_COST_CAP: u64 = 30_000;

/// Generates one random program from the given RNG state.
pub fn program(rng: &mut Rng) -> Prog {
    let nglobals = 1 + rng.below(4) as usize;
    let narrays = 1 + rng.below(3) as usize;
    let globals = (0..nglobals).map(|_| cexpr(rng, 3)).collect();
    let arrays = (0..narrays).map(|_| 1u32 << (2 + rng.below(4))).collect();

    let mut prog = Prog { globals, arrays, funcs: Vec::new(), main: empty_func(0) };
    let nfuncs = 1 + rng.below(4) as usize;
    let mut costs: Vec<u64> = Vec::new();
    for i in 0..nfuncs {
        let nparams = rng.below(4) as usize;
        let (f, cost) = function(rng, &prog, &costs[..i], nparams, FUNC_COST_CAP);
        prog.funcs.push(f);
        costs.push(cost);
    }
    let (mut main, _) = function(rng, &prog, &costs, 0, MAIN_COST_CAP);
    // Replace the trailing return with a checksum over the program's
    // observable state, so a wrong value anywhere tends to reach the exit
    // status.
    main.body.pop();
    let sum = checksum_expr(&prog, &main);
    main.body.push(Stmt::Ret(sum));
    prog.main = main;
    prog
}

fn empty_func(nparams: usize) -> Func {
    Func {
        nparams,
        nlocals: 1,
        nloopvars: 0,
        local_arrays: Vec::new(),
        ptrs: Vec::new(),
        body: vec![Stmt::Ret(Expr::Lit(0))],
    }
}

/// A constant-expression tree for a global initializer.
fn cexpr(rng: &mut Rng, depth: u32) -> CExpr {
    if depth == 0 || rng.below(3) == 0 {
        return CExpr::Lit(lit(rng));
    }
    match rng.below(12) {
        0 => CExpr::Un("-", Box::new(cexpr(rng, depth - 1))),
        1 => CExpr::Un("~", Box::new(cexpr(rng, depth - 1))),
        n => {
            let op = ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"][(n - 2) as usize];
            CExpr::Bin(op, Box::new(cexpr(rng, depth - 1)), Box::new(cexpr(rng, depth - 1)))
        }
    }
}

fn lit(rng: &mut Rng) -> i32 {
    match rng.below(4) {
        0 => *rng.pick(&EDGE),
        1 => rng.range_i32(-16, 17),
        2 => rng.range_i32(-1024, 1025),
        _ => rng.next_u32() as i32,
    }
}

/// Everything the statement/expression generators need to know about the
/// function under construction.
struct Ctx<'a> {
    prog: &'a Prog,
    callee_costs: &'a [u64],
    nparams: usize,
    nlocals: usize,
    local_arrays: Vec<u32>,
    ptrs: Vec<PtrTarget>,
    /// Loop counters allocated so far; each loop takes a fresh one.
    nloopvars: usize,
    /// Loop counters of the loops currently enclosing the generation
    /// point (readable in expressions).
    live_loopvars: Vec<usize>,
    /// Estimated dynamic cost spent so far.
    cost: u64,
    cost_cap: u64,
}

/// Generates a function body. `callee_costs` lists the cost of every
/// callable function (lower-indexed ones); an empty slice means no calls.
fn function(
    rng: &mut Rng,
    prog: &Prog,
    callee_costs: &[u64],
    nparams: usize,
    cost_cap: u64,
) -> (Func, u64) {
    let nlocals = 2 + rng.below(4) as usize;
    let local_arrays: Vec<u32> = (0..rng.below(3)).map(|_| 1u32 << (2 + rng.below(3))).collect();
    let mut ptrs = Vec::new();
    for _ in 0..rng.below(3) {
        ptrs.push(if !local_arrays.is_empty() && rng.bool() {
            PtrTarget::LocalArr(rng.below(local_arrays.len() as u32) as usize)
        } else {
            PtrTarget::GlobalArr(rng.below(prog.arrays.len() as u32) as usize)
        });
    }
    let mut cx = Ctx {
        prog,
        callee_costs,
        nparams,
        nlocals,
        local_arrays,
        ptrs,
        nloopvars: 0,
        live_loopvars: Vec::new(),
        cost: 0,
        cost_cap,
    };
    let nstmts = 2 + rng.below(6) as usize;
    let mut body = block(rng, &mut cx, nstmts, 0, 1);
    body.push(Stmt::Ret(expr(rng, &mut cx, 3)));
    let f = Func {
        nparams,
        nlocals: cx.nlocals,
        nloopvars: cx.nloopvars,
        local_arrays: cx.local_arrays.clone(),
        ptrs: cx.ptrs.clone(),
        body,
    };
    (f, cx.cost.max(1))
}

/// Generates a statement block. `mult` is the product of enclosing loop
/// trip counts (for cost accounting); `depth` the structural nesting
/// depth (capped so straight-line spans stay within D16 branch reach).
fn block(rng: &mut Rng, cx: &mut Ctx, nstmts: usize, depth: u32, mult: u64) -> Vec<Stmt> {
    let mut out = Vec::new();
    for _ in 0..nstmts {
        if cx.cost >= cx.cost_cap {
            break;
        }
        if let Some(st) = stmt(rng, cx, depth, mult) {
            out.push(st);
        }
    }
    out
}

fn stmt(rng: &mut Rng, cx: &mut Ctx, depth: u32, mult: u64) -> Option<Stmt> {
    let in_loop = !cx.live_loopvars.is_empty();
    let roll = rng.below(10);
    match roll {
        // Plain assignment to a scalar or an array/pointer element.
        0..=3 => {
            cx.cost += mult;
            let e = expr(rng, cx, 3);
            Some(Stmt::Assign(lvalue(rng, cx), e))
        }
        // Call (only if there is something to call and budget remains).
        4 => {
            if cx.callee_costs.is_empty() {
                cx.cost += mult;
                let e = expr(rng, cx, 3);
                return Some(Stmt::Assign(lvalue(rng, cx), e));
            }
            let idx = rng.below(cx.callee_costs.len() as u32) as usize;
            let callee_cost = cx.callee_costs[idx];
            if cx.cost + mult * (callee_cost + 1) > cx.cost_cap {
                cx.cost += mult;
                let e = expr(rng, cx, 2);
                return Some(Stmt::Assign(lvalue(rng, cx), e));
            }
            cx.cost += mult * (callee_cost + 1);
            let arity = cx.prog.funcs[idx].nparams;
            let args = (0..arity).map(|_| expr(rng, cx, 2)).collect();
            let dst = rng.below(cx.nlocals as u32) as usize;
            Some(Stmt::CallAssign(dst, idx, args))
        }
        // If / if-else.
        5 | 6 => {
            cx.cost += mult;
            if depth >= 3 {
                let e = expr(rng, cx, 3);
                return Some(Stmt::Assign(lvalue(rng, cx), e));
            }
            let c = expr(rng, cx, 3);
            let tn = sub_len(rng, depth);
            let t = block(rng, cx, tn, depth + 1, mult);
            let e = if rng.bool() {
                let en = sub_len(rng, depth);
                block(rng, cx, en, depth + 1, mult)
            } else {
                Vec::new()
            };
            Some(Stmt::If(c, t, e))
        }
        // Loops. Capped at two levels of loop nesting: the loop's
        // back-branch spans its whole body, and D16's `br` reaches only
        // ±1 KiB — deeper nests routinely blow that at O0.
        7 | 8 => {
            if depth >= 2 {
                cx.cost += mult;
                let e = expr(rng, cx, 3);
                return Some(Stmt::Assign(lvalue(rng, cx), e));
            }
            let count = 1 + rng.below(8) as i32;
            let var = cx.nloopvars;
            cx.nloopvars += 1;
            cx.cost += mult; // loop setup
            cx.live_loopvars.push(var);
            let bn = sub_len(rng, depth);
            let body = block(rng, cx, bn, depth + 1, mult * count as u64);
            cx.live_loopvars.pop();
            Some(if roll == 7 {
                Stmt::For { var, count, body }
            } else {
                Stmt::While { var, count, body }
            })
        }
        // Guarded break (loops only; otherwise another assignment).
        _ => {
            cx.cost += mult;
            if in_loop && depth < 4 {
                let c = expr(rng, cx, 2);
                Some(Stmt::If(c, vec![Stmt::Break], Vec::new()))
            } else {
                let e = expr(rng, cx, 3);
                Some(Stmt::Assign(lvalue(rng, cx), e))
            }
        }
    }
}

/// Statements in a nested block: shrinks with depth so the code span a
/// loop back-branch or `if` skip must cross stays inside D16 reach.
fn sub_len(rng: &mut Rng, depth: u32) -> usize {
    if depth == 0 {
        1 + rng.below(3) as usize
    } else {
        1 + rng.below(2) as usize
    }
}

fn lvalue(rng: &mut Rng, cx: &mut Ctx) -> LValue {
    match rng.below(5) {
        0 | 1 => LValue::Local(rng.below(cx.nlocals as u32) as usize),
        2 => LValue::Global(rng.below(cx.prog.globals.len() as u32) as usize),
        _ => match arr_ref(rng, cx) {
            Some(r) => LValue::Index(r, expr(rng, cx, 2)),
            None => LValue::Local(rng.below(cx.nlocals as u32) as usize),
        },
    }
}

fn arr_ref(rng: &mut Rng, cx: &Ctx) -> Option<ArrRef> {
    let mut choices = Vec::new();
    for i in 0..cx.prog.arrays.len() {
        choices.push(ArrRef::GlobalArr(i));
    }
    for i in 0..cx.local_arrays.len() {
        choices.push(ArrRef::LocalArr(i));
    }
    for i in 0..cx.ptrs.len() {
        choices.push(ArrRef::Ptr(i));
    }
    if choices.is_empty() {
        None
    } else {
        Some(*rng.pick(&choices))
    }
}

fn expr(rng: &mut Rng, cx: &mut Ctx, depth: u32) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        return leaf(rng, cx);
    }
    match rng.below(16) {
        0 => Expr::Un(UOp::Neg, Box::new(expr(rng, cx, depth - 1))),
        1 => Expr::Un(UOp::Not, Box::new(expr(rng, cx, depth - 1))),
        2 => Expr::Un(UOp::LNot, Box::new(expr(rng, cx, depth - 1))),
        3 => Expr::Cmp(
            *rng.pick(&[COp::Eq, COp::Ne, COp::Lt, COp::Le, COp::Gt, COp::Ge]),
            Box::new(expr(rng, cx, depth - 1)),
            Box::new(expr(rng, cx, depth - 1)),
        ),
        4 => Expr::Logic(
            rng.bool(),
            Box::new(expr(rng, cx, depth - 1)),
            Box::new(expr(rng, cx, depth - 1)),
        ),
        n => {
            // Bias toward the operators with interesting edge semantics.
            let op = [
                BOp::Add,
                BOp::Sub,
                BOp::Mul,
                BOp::Div,
                BOp::Rem,
                BOp::Shl,
                BOp::Sar,
                BOp::Div,
                BOp::Shl,
                BOp::And,
                BOp::Or,
            ][(n - 5) as usize];
            Expr::Bin(op, Box::new(expr(rng, cx, depth - 1)), Box::new(expr(rng, cx, depth - 1)))
        }
    }
}

fn leaf(rng: &mut Rng, cx: &mut Ctx) -> Expr {
    for _ in 0..4 {
        match rng.below(7) {
            0 => return Expr::Lit(lit(rng)),
            1 => return Expr::Local(rng.below(cx.nlocals as u32) as usize),
            2 if cx.nparams > 0 => return Expr::Param(rng.below(cx.nparams as u32) as usize),
            3 => return Expr::Global(rng.below(cx.prog.globals.len() as u32) as usize),
            4 if !cx.live_loopvars.is_empty() => {
                let i = rng.below(cx.live_loopvars.len() as u32) as usize;
                return Expr::LoopVar(cx.live_loopvars[i]);
            }
            5 => {
                if let Some(r) = arr_ref(rng, cx) {
                    let idx = if rng.bool() {
                        Expr::Lit(rng.range_i32(0, 16))
                    } else {
                        Expr::Local(rng.below(cx.nlocals as u32) as usize)
                    };
                    return Expr::Index(r, Box::new(idx));
                }
            }
            _ => return Expr::Lit(rng.range_i32(-8, 9)),
        }
    }
    Expr::Lit(1)
}

/// A checksum expression folding the observable program state: every
/// global scalar, three probes into every global array, and the scalar
/// locals of `main`.
fn checksum_expr(prog: &Prog, main: &Func) -> Expr {
    let mut acc = Expr::Lit(0);
    let mix = |a: Expr, e: Expr| {
        Expr::Bin(
            BOp::Add,
            Box::new(Expr::Bin(BOp::Mul, Box::new(a), Box::new(Expr::Lit(31)))),
            Box::new(e),
        )
    };
    for i in 0..prog.globals.len() {
        acc = mix(acc, Expr::Global(i));
    }
    for (i, len) in prog.arrays.iter().enumerate() {
        for probe in [0i32, (len / 2) as i32, (len - 1) as i32] {
            acc = mix(acc, Expr::Index(ArrRef::GlobalArr(i), Box::new(Expr::Lit(probe))));
        }
    }
    for i in 0..main.nlocals {
        acc = mix(acc, Expr::Local(i));
    }
    acc
}
