//! The generated-program AST and its Mini-C pretty-printer.
//!
//! The fuzzer owns a small typed AST rather than generating C text
//! directly: the reference interpreter walks the same tree the printer
//! renders, so the two cannot disagree about what was generated, and the
//! shrinker can delta-reduce structurally instead of by text surgery.
//!
//! Everything about the shape guarantees well-definedness on the target
//! machine ([`d16_isa::sem`]):
//!
//! * array lengths are powers of two and every index is rendered as
//!   `arr[(e) & (len - 1)]`, so accesses are in bounds by construction;
//! * loop counters come from a dedicated pool (`iv0`, `iv1`, ...) that
//!   assignments never target, so loops terminate by construction;
//! * function calls appear only as whole statements (`x3 = f1(...)`),
//!   never nested inside compound expressions, so C's unspecified operand
//!   evaluation order can never be observed — every other expression is
//!   side-effect free;
//! * pointers are bound once, to the base of a named array, and only
//!   indexed (`ptr0[(e) & mask]`) — the supported subset, with no
//!   pointer arithmetic that could leave the object.
//!
//! Shift counts, division by zero and signed overflow are deliberately
//! *not* constrained: those follow the machine contract and are exactly
//! what the differential oracles are hunting for.

use std::fmt::Write as _;

/// A whole generated program.
#[derive(Clone, Debug)]
pub struct Prog {
    /// Global scalars `g0, g1, ...`, each with a constant-expression
    /// initializer (exercising the compiler's global-initializer folder).
    pub globals: Vec<CExpr>,
    /// Global arrays `ga0, ga1, ...`; the value is the power-of-two
    /// length. Zero-initialized (`.bss`).
    pub arrays: Vec<u32>,
    /// Helper functions `f0, f1, ...`; `fN` may only call `fM` for
    /// `M < N`, so the call graph is acyclic.
    pub funcs: Vec<Func>,
    /// `main` — may call any helper. Its body ends with `Ret` of a
    /// checksum expression over the program's state.
    pub main: Func,
}

/// A constant initializer expression (folded at compile time).
#[derive(Clone, Debug)]
pub enum CExpr {
    /// Literal.
    Lit(i32),
    /// `-e` or `~e`.
    Un(&'static str, Box<CExpr>),
    /// One of `+ - * / % << >> & | ^`.
    Bin(&'static str, Box<CExpr>, Box<CExpr>),
}

/// One function.
#[derive(Clone, Debug)]
pub struct Func {
    /// Parameter count (`p0, p1, ...`, all `int`).
    pub nparams: usize,
    /// Scalar locals `x0, x1, ...`, all declared `= 0` up front so the
    /// shrinker can drop any assignment without creating an
    /// uninitialized read.
    pub nlocals: usize,
    /// Loop-counter pool `iv0, iv1, ...` (one per loop statement).
    pub nloopvars: usize,
    /// Local arrays `la0, la1, ...` (power-of-two lengths), zero-filled
    /// by an init loop before the body runs.
    pub local_arrays: Vec<u32>,
    /// Pointer locals `ptr0, ptr1, ...`, each bound to an array base.
    pub ptrs: Vec<PtrTarget>,
    /// Body; execution always reaches a `Ret`.
    pub body: Vec<Stmt>,
}

/// What a pointer local is bound to.
#[derive(Copy, Clone, Debug)]
pub enum PtrTarget {
    /// `int *ptrK = gaI;`
    GlobalArr(usize),
    /// `int *ptrK = laI;`
    LocalArr(usize),
}

/// An indexable object.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ArrRef {
    /// Global array `gaI`.
    GlobalArr(usize),
    /// Local array `laI` of the current function.
    LocalArr(usize),
    /// Pointer local `ptrI` of the current function.
    Ptr(usize),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `lv = e;`
    Assign(LValue, Expr),
    /// `xI = fK(args);` — the only place calls occur.
    CallAssign(usize, usize, Vec<Expr>),
    /// `if (c) { .. } else { .. }` (else may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (ivV = 0; ivV < count; ivV++) { .. }`
    For {
        /// Loop-counter slot.
        var: usize,
        /// Trip count (small, positive).
        count: i32,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `ivV = count; while (ivV > 0) { ivV = ivV - 1; .. }`
    While {
        /// Loop-counter slot.
        var: usize,
        /// Trip count (small, positive).
        count: i32,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `break;` — generated only inside loop bodies.
    Break,
    /// `return e;`
    Ret(Expr),
}

/// Assignable places.
#[derive(Clone, Debug)]
pub enum LValue {
    /// Scalar local `xI`.
    Local(usize),
    /// Global scalar `gI`.
    Global(usize),
    /// `arr[(e) & mask]`.
    Index(ArrRef, Expr),
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UOp {
    /// `-e`
    Neg,
    /// `~e`
    Not,
    /// `!e`
    LNot,
}

/// Binary arithmetic operators (all with machine semantics).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>` (arithmetic on `int`)
    Sar,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

impl BOp {
    /// The C spelling.
    pub fn c(self) -> &'static str {
        match self {
            BOp::Add => "+",
            BOp::Sub => "-",
            BOp::Mul => "*",
            BOp::Div => "/",
            BOp::Rem => "%",
            BOp::Shl => "<<",
            BOp::Sar => ">>",
            BOp::And => "&",
            BOp::Or => "|",
            BOp::Xor => "^",
        }
    }
}

/// Comparison operators (result 0 or 1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum COp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl COp {
    /// The C spelling.
    pub fn c(self) -> &'static str {
        match self {
            COp::Eq => "==",
            COp::Ne => "!=",
            COp::Lt => "<",
            COp::Le => "<=",
            COp::Gt => ">",
            COp::Ge => ">=",
        }
    }
}

/// Expressions. Side-effect free: calls are statements, not expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Literal.
    Lit(i32),
    /// Scalar local `xI`.
    Local(usize),
    /// Parameter `pI`.
    Param(usize),
    /// Loop counter `ivI` (read-only in bodies).
    LoopVar(usize),
    /// Global scalar `gI`.
    Global(usize),
    /// `arr[(e) & mask]`.
    Index(ArrRef, Box<Expr>),
    /// Unary op.
    Un(UOp, Box<Expr>),
    /// Binary arithmetic.
    Bin(BOp, Box<Expr>, Box<Expr>),
    /// Comparison.
    Cmp(COp, Box<Expr>, Box<Expr>),
    /// `&&` (true) / `||` (false); both operands are pure, so
    /// short-circuiting is unobservable.
    Logic(bool, Box<Expr>, Box<Expr>),
}

impl Prog {
    /// The array length behind an [`ArrRef`], resolving pointers through
    /// the given function's bindings.
    pub fn arr_len(&self, f: &Func, r: ArrRef) -> u32 {
        match r {
            ArrRef::GlobalArr(i) => self.arrays[i],
            ArrRef::LocalArr(i) => f.local_arrays[i],
            ArrRef::Ptr(i) => match f.ptrs[i] {
                PtrTarget::GlobalArr(g) => self.arrays[g],
                PtrTarget::LocalArr(l) => f.local_arrays[l],
            },
        }
    }

    /// Renders the program as Mini-C source.
    pub fn to_c(&self) -> String {
        let mut s = String::new();
        for (i, init) in self.globals.iter().enumerate() {
            let _ = writeln!(s, "int g{i} = {};", cexpr_c(init));
        }
        for (i, len) in self.arrays.iter().enumerate() {
            let _ = writeln!(s, "int ga{i}[{len}];");
        }
        if !self.globals.is_empty() || !self.arrays.is_empty() {
            s.push('\n');
        }
        for (i, f) in self.funcs.iter().enumerate() {
            self.func_c(&mut s, f, &format!("f{i}"));
            s.push('\n');
        }
        self.func_c(&mut s, &self.main, "main");
        s
    }

    fn func_c(&self, s: &mut String, f: &Func, name: &str) {
        let params = if f.nparams == 0 {
            "void".to_string()
        } else {
            (0..f.nparams).map(|i| format!("int p{i}")).collect::<Vec<_>>().join(", ")
        };
        let _ = writeln!(s, "int {name}({params}) {{");
        for i in 0..f.nlocals {
            let _ = writeln!(s, "    int x{i} = 0;");
        }
        for i in 0..f.nloopvars {
            let _ = writeln!(s, "    int iv{i} = 0;");
        }
        for (i, len) in f.local_arrays.iter().enumerate() {
            let _ = writeln!(s, "    int la{i}[{len}];");
        }
        for (i, t) in f.ptrs.iter().enumerate() {
            let target = match t {
                PtrTarget::GlobalArr(g) => format!("ga{g}"),
                PtrTarget::LocalArr(l) => format!("la{l}"),
            };
            let _ = writeln!(s, "    int *ptr{i} = {target};");
        }
        // Zero-fill the local arrays (C locals are uninitialized). The
        // fill loop borrows loop-counter slot conventions with a name the
        // generator never touches.
        if !f.local_arrays.is_empty() {
            let _ = writeln!(s, "    int zi = 0;");
            for (i, len) in f.local_arrays.iter().enumerate() {
                let _ = writeln!(s, "    for (zi = 0; zi < {len}; zi++) la{i}[zi] = 0;");
            }
        }
        for st in &f.body {
            self.stmt_c(s, f, st, 1);
        }
        let _ = writeln!(s, "}}");
    }

    fn stmt_c(&self, s: &mut String, f: &Func, st: &Stmt, depth: usize) {
        let pad = "    ".repeat(depth);
        match st {
            Stmt::Assign(lv, e) => {
                let lhs = match lv {
                    LValue::Local(i) => format!("x{i}"),
                    LValue::Global(i) => format!("g{i}"),
                    LValue::Index(r, idx) => self.index_c(f, *r, idx),
                };
                let _ = writeln!(s, "{pad}{lhs} = {};", self.expr_c(f, e));
            }
            Stmt::CallAssign(dst, func, args) => {
                let a = args.iter().map(|e| self.expr_c(f, e)).collect::<Vec<_>>().join(", ");
                let _ = writeln!(s, "{pad}x{dst} = f{func}({a});");
            }
            Stmt::If(c, t, e) => {
                let _ = writeln!(s, "{pad}if ({}) {{", self.expr_c(f, c));
                for st in t {
                    self.stmt_c(s, f, st, depth + 1);
                }
                if e.is_empty() {
                    let _ = writeln!(s, "{pad}}}");
                } else {
                    let _ = writeln!(s, "{pad}}} else {{");
                    for st in e {
                        self.stmt_c(s, f, st, depth + 1);
                    }
                    let _ = writeln!(s, "{pad}}}");
                }
            }
            Stmt::For { var, count, body } => {
                let _ = writeln!(s, "{pad}for (iv{var} = 0; iv{var} < {count}; iv{var}++) {{");
                for st in body {
                    self.stmt_c(s, f, st, depth + 1);
                }
                let _ = writeln!(s, "{pad}}}");
            }
            Stmt::While { var, count, body } => {
                let _ = writeln!(s, "{pad}iv{var} = {count};");
                let _ = writeln!(s, "{pad}while (iv{var} > 0) {{");
                let _ = writeln!(s, "{pad}    iv{var} = iv{var} - 1;");
                for st in body {
                    self.stmt_c(s, f, st, depth + 1);
                }
                let _ = writeln!(s, "{pad}}}");
            }
            Stmt::Break => {
                let _ = writeln!(s, "{pad}break;");
            }
            Stmt::Ret(e) => {
                let _ = writeln!(s, "{pad}return {};", self.expr_c(f, e));
            }
        }
    }

    fn index_c(&self, f: &Func, r: ArrRef, idx: &Expr) -> String {
        let name = match r {
            ArrRef::GlobalArr(i) => format!("ga{i}"),
            ArrRef::LocalArr(i) => format!("la{i}"),
            ArrRef::Ptr(i) => format!("ptr{i}"),
        };
        let mask = self.arr_len(f, r) - 1;
        format!("{name}[({}) & {mask}]", self.expr_c(f, idx))
    }

    fn expr_c(&self, f: &Func, e: &Expr) -> String {
        match e {
            Expr::Lit(v) => lit_c(*v),
            Expr::Local(i) => format!("x{i}"),
            Expr::Param(i) => format!("p{i}"),
            Expr::LoopVar(i) => format!("iv{i}"),
            Expr::Global(i) => format!("g{i}"),
            Expr::Index(r, idx) => self.index_c(f, *r, idx),
            Expr::Un(op, a) => {
                let o = match op {
                    UOp::Neg => "-",
                    UOp::Not => "~",
                    UOp::LNot => "!",
                };
                format!("{o}({})", self.expr_c(f, a))
            }
            Expr::Bin(op, a, b) => {
                format!("({} {} {})", self.expr_c(f, a), op.c(), self.expr_c(f, b))
            }
            Expr::Cmp(op, a, b) => {
                format!("({} {} {})", self.expr_c(f, a), op.c(), self.expr_c(f, b))
            }
            Expr::Logic(and, a, b) => {
                let o = if *and { "&&" } else { "||" };
                format!("({} {o} {})", self.expr_c(f, a), self.expr_c(f, b))
            }
        }
    }
}

/// Renders a literal. `i32::MIN` has no negative-literal spelling in C
/// (`-2147483648` is unary minus applied to an out-of-`int` constant), so
/// it is printed as the canonical `(-2147483647 - 1)`.
fn lit_c(v: i32) -> String {
    if v == i32::MIN {
        "(-2147483647 - 1)".to_string()
    } else {
        v.to_string()
    }
}

fn cexpr_c(e: &CExpr) -> String {
    match e {
        CExpr::Lit(v) => lit_c(*v),
        CExpr::Un(op, a) => format!("{op}({})", cexpr_c(a)),
        CExpr::Bin(op, a, b) => format!("({} {op} {})", cexpr_c(a), cexpr_c(b)),
    }
}
