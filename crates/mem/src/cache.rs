//! A dinero-equivalent sub-blocked cache simulator.
//!
//! The paper's configuration (§4.1, Appendix A.3): separate direct-mapped
//! instruction and data caches, blocks of 8–64 bytes organized in
//! sub-blocks, "wrap-around prefetch for instruction and data reads and no
//! prefetch on write". This module implements that organization with
//! configurable size, block size, sub-block size and associativity (LRU).
//!
//! Semantics:
//!
//! * A read that misses (tag miss, or tag hit with the sub-block invalid)
//!   fetches the missed sub-block and *prefetches the following sub-block*
//!   (wrapping within the block) in the same transaction.
//! * A write that misses allocates the block and validates the written
//!   sub-block without fetching it (write-validate), counting one write
//!   miss; dirty sub-blocks are written back on eviction.
//! * Miss counts are demand misses only; prefetched sub-blocks count as
//!   traffic but not as misses.

use d16_telemetry::Counters;

d16_telemetry::counter_schema! {
    /// Per-cache hit/miss/traffic counters, bumped by [`Cache`] on every
    /// access. They mirror [`CacheStats`] exactly (hits are counted
    /// explicitly rather than derived) so a dump can be reconciled against
    /// the aggregates; traffic is counted in sub-blocks here and in bytes
    /// there.
    pub MEM_SCHEMA / MemCounter {
        /// Demand reads that hit.
        ReadHits => "read.hits",
        /// Demand reads that missed (tag or sub-block miss).
        ReadMisses => "read.misses",
        /// Writes that hit a valid sub-block.
        WriteHits => "write.hits",
        /// Writes that missed (allocated by write-validate).
        WriteMisses => "write.misses",
        /// Sub-blocks fetched on demand.
        DemandFetches => "demand.sub_blocks",
        /// Sub-blocks fetched by wrap-around prefetch.
        Prefetches => "prefetch.sub_blocks",
        /// Dirty sub-blocks written back (evictions and flushes).
        Writebacks => "writeback.sub_blocks",
    }
}

/// A rejected cache geometry: the offending configuration's label and
/// the first violated constraint. Returned by [`CacheConfig::validate`]
/// and every constructor that takes a configuration, so an off-grid or
/// corrupted geometry surfaces as a reportable error instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// Label of the rejected geometry (see [`CacheConfig::label`]).
    pub config: String,
    /// The first violated constraint, in prose.
    pub reason: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache config {}: {}", self.config, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Cache geometry and policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Block (line) size in bytes.
    pub block: u32,
    /// Sub-block size in bytes (equal to `block` for unit-block caches).
    pub sub_block: u32,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Whether read misses prefetch the next sub-block (wrap-around).
    pub wrap_prefetch: bool,
}

impl CacheConfig {
    /// The paper's organization: direct-mapped, 8-byte sub-blocks,
    /// wrap-around prefetch.
    pub fn paper(size: u32, block: u32) -> Self {
        CacheConfig { size, block, sub_block: 8.min(block), assoc: 1, wrap_prefetch: true }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fail = |reason: String| ConfigError { config: self.label(), reason };
        let pow2 = |v: u32, what: &str| {
            if v.is_power_of_two() {
                Ok(())
            } else {
                Err(fail(format!("{what} {v} is not a power of two")))
            }
        };
        pow2(self.size, "size")?;
        pow2(self.block, "block")?;
        pow2(self.sub_block, "sub-block")?;
        pow2(self.assoc, "associativity")?;
        if self.sub_block < 4 || self.sub_block > self.block {
            return Err(fail(format!(
                "sub-block {} must be in 4..=block ({})",
                self.sub_block, self.block
            )));
        }
        if self.block * self.assoc > self.size {
            return Err(fail(format!(
                "size {} too small for {}-way blocks of {}",
                self.size, self.assoc, self.block
            )));
        }
        if self.subs_per_block() > 64 {
            return Err(fail(format!(
                "block {} holds more than 64 sub-blocks of {} (validity bitmap limit)",
                self.block, self.sub_block
            )));
        }
        Ok(())
    }

    /// A stable, filesystem- and JSON-key-safe label for this geometry,
    /// e.g. `4096B.b32.s8.a1` (plus `.np` when prefetch is disabled).
    /// Used to key per-configuration telemetry dumps.
    pub fn label(&self) -> String {
        let mut s = format!("{}B.b{}.s{}.a{}", self.size, self.block, self.sub_block, self.assoc);
        if !self.wrap_prefetch {
            s.push_str(".np");
        }
        s
    }

    fn sets(&self) -> u32 {
        self.size / (self.block * self.assoc)
    }

    fn subs_per_block(&self) -> u32 {
        self.block / self.sub_block
    }
}

/// Traffic and miss counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Demand read accesses.
    pub reads: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub writes: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Bytes fetched from memory (demand sub-blocks).
    pub demand_bytes_in: u64,
    /// Bytes fetched from memory by wrap-around prefetch.
    pub prefetch_bytes_in: u64,
    /// Bytes written back to memory (dirty sub-block evictions).
    pub bytes_out: u64,
}

impl CacheStats {
    /// Demand misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Demand miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Read miss ratio.
    pub fn read_miss_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Write miss ratio.
    pub fn write_miss_ratio(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_misses as f64 / self.writes as f64
        }
    }

    /// Total bus traffic in bytes (in + out).
    pub fn traffic_bytes(&self) -> u64 {
        self.demand_bytes_in + self.prefetch_bytes_in + self.bytes_out
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: u32,
    valid: u64, // sub-block validity bitmap
    dirty: u64, // sub-block dirty bitmap
    lru: u64,
}

/// One cache (instruction or data — the organization is identical).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * assoc
    tick: u64,
    stats: CacheStats,
    tele: Counters,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Errors
    ///
    /// Rejects a configuration that fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = (cfg.sets() * cfg.assoc) as usize;
        Ok(Cache {
            cfg,
            lines: (0..n).map(|_| Line { tag: 0, valid: 0, dirty: 0, lru: 0 }).collect(),
            tick: 0,
            stats: CacheStats::default(),
            tele: Counters::new(&MEM_SCHEMA),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The [`MEM_SCHEMA`] telemetry block (all zeros with telemetry
    /// compiled out).
    pub fn telemetry(&self) -> &Counters {
        &self.tele
    }

    /// Performs a read access; returns whether it hit.
    pub fn read(&mut self, addr: u32) -> bool {
        self.stats.reads += 1;
        let hit = self.touch(addr, false);
        if hit {
            self.tele.bump(MemCounter::ReadHits);
        } else {
            self.stats.read_misses += 1;
            self.tele.bump(MemCounter::ReadMisses);
        }
        hit
    }

    /// Performs a write access; returns whether it hit.
    pub fn write(&mut self, addr: u32) -> bool {
        self.stats.writes += 1;
        let hit = self.touch(addr, true);
        if hit {
            self.tele.bump(MemCounter::WriteHits);
        } else {
            self.stats.write_misses += 1;
            self.tele.bump(MemCounter::WriteMisses);
        }
        hit
    }

    fn touch(&mut self, addr: u32, is_write: bool) -> bool {
        self.tick += 1;
        let cfg = self.cfg;
        let block_addr = addr / cfg.block;
        let set = block_addr % cfg.sets();
        let tag = block_addr / cfg.sets();
        let sub = (addr % cfg.block) / cfg.sub_block;
        let base = (set * cfg.assoc) as usize;
        let ways = &mut self.lines[base..base + cfg.assoc as usize];

        // Look for a tag match.
        if let Some(way) = ways.iter_mut().find(|w| w.valid != 0 && w.tag == tag) {
            way.lru = self.tick;
            let present = way.valid & (1 << sub) != 0;
            if is_write {
                way.valid |= 1 << sub;
                way.dirty |= 1 << sub;
                return present;
            }
            if present {
                return true;
            }
            // Tag hit, sub-block miss: demand-fetch + wrap-around prefetch.
            way.valid |= 1 << sub;
            self.stats.demand_bytes_in += cfg.sub_block as u64;
            self.tele.bump(MemCounter::DemandFetches);
            if cfg.wrap_prefetch && cfg.subs_per_block() > 1 {
                let nxt = (sub + 1) % cfg.subs_per_block();
                if way.valid & (1 << nxt) == 0 {
                    way.valid |= 1 << nxt;
                    self.stats.prefetch_bytes_in += cfg.sub_block as u64;
                    self.tele.bump(MemCounter::Prefetches);
                }
            }
            return false;
        }

        // Tag miss: evict the LRU way.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid == 0 { 0 } else { w.lru })
            .expect("at least one way");
        let dirty_subs = victim.dirty.count_ones() as u64;
        self.stats.bytes_out += dirty_subs * cfg.sub_block as u64;
        self.tele.add(MemCounter::Writebacks, dirty_subs);
        victim.tag = tag;
        victim.valid = 1 << sub;
        victim.dirty = 0;
        victim.lru = self.tick;
        if is_write {
            victim.dirty = 1 << sub;
        } else {
            self.stats.demand_bytes_in += cfg.sub_block as u64;
            self.tele.bump(MemCounter::DemandFetches);
            if cfg.wrap_prefetch && cfg.subs_per_block() > 1 {
                let nxt = (sub + 1) % cfg.subs_per_block();
                victim.valid |= 1 << nxt;
                self.stats.prefetch_bytes_in += cfg.sub_block as u64;
                self.tele.bump(MemCounter::Prefetches);
            }
        }
        false
    }

    /// Checks that the telemetry block agrees with [`CacheStats`]:
    /// hits + misses partition the accesses and the sub-block traffic
    /// counters scale to the byte aggregates. Trivially passes with
    /// telemetry compiled out.
    ///
    /// # Errors
    ///
    /// Returns a description naming the failing identity and both sides.
    pub fn reconciles(&self) -> Result<(), String> {
        if !d16_telemetry::ENABLED {
            return Ok(());
        }
        let eq = |what: &str, counter: u64, aggregate: u64| {
            if counter == aggregate {
                Ok(())
            } else {
                Err(format!("{what}: counter {counter} != aggregate {aggregate}"))
            }
        };
        let t = &self.tele;
        let s = &self.stats;
        let sb = self.cfg.sub_block as u64;
        eq(
            "read hits + misses",
            t.get(MemCounter::ReadHits) + t.get(MemCounter::ReadMisses),
            s.reads,
        )?;
        eq("read.misses", t.get(MemCounter::ReadMisses), s.read_misses)?;
        eq(
            "write hits + misses",
            t.get(MemCounter::WriteHits) + t.get(MemCounter::WriteMisses),
            s.writes,
        )?;
        eq("write.misses", t.get(MemCounter::WriteMisses), s.write_misses)?;
        eq("demand bytes", t.get(MemCounter::DemandFetches) * sb, s.demand_bytes_in)?;
        eq("prefetch bytes", t.get(MemCounter::Prefetches) * sb, s.prefetch_bytes_in)?;
        eq("writeback bytes", t.get(MemCounter::Writebacks) * sb, s.bytes_out)?;
        Ok(())
    }

    /// Rebuilds a cache whose aggregate statistics — and therefore every
    /// figure the experiments derive — equal a previously measured run:
    /// the `d16-store` restore path. Contents start cold (restored
    /// systems are read for their results, not swept further), and the
    /// telemetry block is reconstructed from the aggregates via the same
    /// identities [`Cache::reconciles`] checks, so a restored cache
    /// reconciles by construction.
    ///
    /// # Errors
    ///
    /// Rejects an invalid geometry or internally inconsistent statistics
    /// (more misses than accesses, byte traffic not a multiple of the
    /// sub-block) — the shapes a damaged persisted record would take.
    pub fn from_stats(cfg: CacheConfig, stats: CacheStats) -> Result<Cache, String> {
        cfg.validate().map_err(|e| e.to_string())?;
        if stats.read_misses > stats.reads {
            return Err(format!("{} read misses > {} reads", stats.read_misses, stats.reads));
        }
        if stats.write_misses > stats.writes {
            return Err(format!("{} write misses > {} writes", stats.write_misses, stats.writes));
        }
        let sb = u64::from(cfg.sub_block);
        for (what, bytes) in [
            ("demand", stats.demand_bytes_in),
            ("prefetch", stats.prefetch_bytes_in),
            ("writeback", stats.bytes_out),
        ] {
            if bytes % sb != 0 {
                return Err(format!("{what} traffic {bytes} is not whole sub-blocks of {sb}"));
            }
        }
        let mut c = Cache::new(cfg).map_err(|e| e.to_string())?;
        c.stats = stats;
        c.tele.add(MemCounter::ReadHits, stats.reads - stats.read_misses);
        c.tele.add(MemCounter::ReadMisses, stats.read_misses);
        c.tele.add(MemCounter::WriteHits, stats.writes - stats.write_misses);
        c.tele.add(MemCounter::WriteMisses, stats.write_misses);
        c.tele.add(MemCounter::DemandFetches, stats.demand_bytes_in / sb);
        c.tele.add(MemCounter::Prefetches, stats.prefetch_bytes_in / sb);
        c.tele.add(MemCounter::Writebacks, stats.bytes_out / sb);
        debug_assert!(c.reconciles().is_ok());
        Ok(c)
    }

    /// Invalidates all contents, keeping the statistics.
    pub fn flush(&mut self) {
        let dirty: u64 = self.lines.iter().map(|l| l.dirty.count_ones() as u64).sum();
        self.stats.bytes_out += dirty * self.cfg.sub_block as u64;
        self.tele.add(MemCounter::Writebacks, dirty);
        for l in &mut self.lines {
            l.valid = 0;
            l.dirty = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 256 B direct-mapped, 32 B blocks, 8 B sub-blocks.
        Cache::new(CacheConfig {
            size: 256,
            block: 32,
            sub_block: 8,
            assoc: 1,
            wrap_prefetch: true,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.read(0));
        assert!(c.read(0), "same sub-block hits");
        assert!(c.read(4), "same sub-block, different word");
        assert!(c.read(8), "wrap-around prefetch made the next sub-block present");
        assert!(!c.read(16), "third sub-block was not prefetched");
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn wraparound_prefetch_wraps() {
        let mut c = small();
        assert!(!c.read(24), "last sub-block of block 0");
        assert!(c.read(0), "prefetch wrapped to sub-block 0");
    }

    #[test]
    fn prefetch_disabled() {
        let mut c = Cache::new(CacheConfig {
            size: 256,
            block: 32,
            sub_block: 8,
            assoc: 1,
            wrap_prefetch: false,
        })
        .unwrap();
        assert!(!c.read(0));
        assert!(!c.read(8), "no prefetch: next sub-block misses");
        assert_eq!(c.stats().prefetch_bytes_in, 0);
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let mut c = small();
        // 256/32 = 8 sets; addresses 0 and 256 conflict in set 0.
        assert!(!c.read(0));
        assert!(!c.read(256));
        assert!(!c.read(0), "evicted by the conflicting block");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = Cache::new(CacheConfig {
            size: 256,
            block: 32,
            sub_block: 8,
            assoc: 2,
            wrap_prefetch: true,
        })
        .unwrap();
        assert!(!c.read(0));
        assert!(!c.read(256));
        assert!(c.read(0), "both fit in a 2-way set");
        // A third conflicting block evicts the LRU (256).
        assert!(!c.read(512));
        assert!(c.read(0));
        assert!(!c.read(256));
    }

    #[test]
    fn write_validate_and_writeback() {
        let mut c = small();
        assert!(!c.write(0), "write miss allocates without fetching");
        assert_eq!(c.stats().demand_bytes_in, 0);
        assert!(c.write(0), "second write hits");
        assert!(c.read(0), "reading the written sub-block hits");
        // Evict the dirty block: one dirty sub-block writes back.
        c.read(256);
        assert_eq!(c.stats().bytes_out, 8);
    }

    #[test]
    fn flush_writes_back_dirty() {
        let mut c = small();
        c.write(0);
        c.write(8);
        c.flush();
        assert_eq!(c.stats().bytes_out, 16);
        assert!(!c.read(0), "flushed");
    }

    #[test]
    fn stats_identities() {
        let mut c = small();
        for a in (0..1024).step_by(4) {
            c.read(a);
        }
        for a in (0..512).step_by(16) {
            c.write(a);
        }
        let s = *c.stats();
        assert_eq!(s.accesses(), 256 + 32);
        assert!(s.read_misses <= s.reads);
        assert!(s.write_misses <= s.writes);
        assert!(s.miss_ratio() <= 1.0 && s.miss_ratio() >= 0.0);
    }

    #[test]
    fn paper_config_shape() {
        let c = CacheConfig::paper(4096, 32);
        assert_eq!(c.sub_block, 8);
        assert_eq!(c.assoc, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(CacheConfig { size: 100, block: 32, sub_block: 8, assoc: 1, wrap_prefetch: true }
            .validate()
            .is_err());
        assert!(CacheConfig { size: 128, block: 32, sub_block: 64, assoc: 1, wrap_prefetch: true }
            .validate()
            .is_err());
        assert!(CacheConfig { size: 64, block: 64, sub_block: 8, assoc: 2, wrap_prefetch: true }
            .validate()
            .is_err());
        // More than 64 sub-blocks per block overflows the validity bitmap.
        let wide =
            CacheConfig { size: 4096, block: 1024, sub_block: 4, assoc: 1, wrap_prefetch: true };
        let err = wide.validate().unwrap_err();
        assert!(err.reason.contains("64 sub-blocks"), "{err}");
        assert_eq!(err.config, wide.label());
        assert!(Cache::new(wide).is_err());
    }

    #[test]
    fn telemetry_reconciles_with_stats() {
        let mut c = small();
        for i in 0..4000u32 {
            let a = (i * 52) % 4096;
            if i % 3 == 0 {
                c.write(a);
            } else {
                c.read(a);
            }
        }
        c.flush();
        c.reconciles().unwrap();
        if d16_telemetry::ENABLED {
            use d16_telemetry::CounterId;
            assert_eq!(c.telemetry().get(MemCounter::ReadMisses), c.stats().read_misses);
            assert_eq!(MEM_SCHEMA.len(), 7);
            assert_eq!(MemCounter::ReadHits.index(), 0);
        }
    }

    #[test]
    fn from_stats_restores_results_and_reconciles() {
        let mut c = small();
        for i in 0..4000u32 {
            let a = (i * 52) % 4096;
            if i % 3 == 0 {
                c.write(a);
            } else {
                c.read(a);
            }
        }
        let restored = Cache::from_stats(*c.config(), *c.stats()).unwrap();
        assert_eq!(restored.stats(), c.stats());
        assert_eq!(restored.config(), c.config());
        restored.reconciles().unwrap();
        if d16_telemetry::ENABLED {
            assert_eq!(
                restored.telemetry().iter().collect::<Vec<_>>(),
                c.telemetry().iter().collect::<Vec<_>>(),
                "telemetry rebuilt exactly from the aggregates"
            );
        }
    }

    #[test]
    fn from_stats_rejects_inconsistent_records() {
        let cfg = CacheConfig::paper(4096, 32);
        let more_misses_than_reads =
            CacheStats { reads: 1, read_misses: 2, ..CacheStats::default() };
        assert!(Cache::from_stats(cfg, more_misses_than_reads).is_err());
        let ragged_traffic = CacheStats { demand_bytes_in: 7, ..CacheStats::default() };
        assert!(Cache::from_stats(cfg, ragged_traffic).is_err());
        let bad_cfg = CacheConfig { size: 100, ..cfg };
        assert!(Cache::from_stats(bad_cfg, CacheStats::default()).is_err());
    }

    #[test]
    fn config_labels_are_stable() {
        assert_eq!(CacheConfig::paper(4096, 32).label(), "4096B.b32.s8.a1");
        let np = CacheConfig { size: 128, block: 16, sub_block: 8, assoc: 2, wrap_prefetch: false };
        assert_eq!(np.label(), "128B.b16.s8.a2.np");
    }

    #[test]
    fn bigger_cache_never_misses_more_on_loops() {
        // A looping access pattern: miss count must not increase with size.
        let pattern: Vec<u32> = (0..10).flat_map(|_| (0..2048u32).step_by(4)).collect();
        let mut last = u64::MAX;
        for size in [1024, 2048, 4096, 8192] {
            let mut c = Cache::new(CacheConfig::paper(size, 32)).unwrap();
            for &a in &pattern {
                c.read(a);
            }
            assert!(c.stats().misses() <= last, "size {size}");
            last = c.stats().misses();
        }
    }
}
