//! Single-pass multi-configuration cache evaluation.
//!
//! The paper's cache study replays each recorded access trace once per
//! cache configuration, dinero-style. The classic trace-driven-simulation
//! literature (Mattson et al.'s stack algorithms; Sugumar & Abraham's
//! Cheetah) observes that independent configurations can instead be
//! evaluated in *one* sweep over the trace. [`CacheBank`] is the simplest
//! correct form of that idea: it holds N independent [`CacheSystem`]s and
//! feeds every access to all of them, so a trace is decoded and walked
//! exactly once no matter how many geometries are under study.
//!
//! Each member system updates exactly as it would in a dedicated replay,
//! so per-config statistics are bit-identical to N serial replays (a
//! differential test in `tests/proptests.rs` asserts this).

use crate::cache::{CacheConfig, ConfigError};
use crate::system::CacheSystem;
use d16_sim::AccessSink;
use d16_telemetry::{Counters, Registry};

d16_telemetry::counter_schema! {
    /// Sweep-level counters: how many accesses one single-pass replay fed
    /// to every member system. Counted once per access, not per member,
    /// so they measure the trace, not the bank width.
    pub BANK_SCHEMA / BankCounter {
        /// Instruction fetches swept.
        Fetches => "sweep.fetches",
        /// Data reads swept.
        Reads => "sweep.reads",
        /// Data writes swept.
        Writes => "sweep.writes",
    }
}

/// N independent split-cache systems fed by one access stream.
#[derive(Clone, Debug)]
pub struct CacheBank {
    systems: Vec<CacheSystem>,
    tele: Counters,
}

impl CacheBank {
    /// Builds a bank from pre-constructed systems.
    pub fn new(systems: Vec<CacheSystem>) -> Self {
        CacheBank { systems, tele: Counters::new(&BANK_SCHEMA) }
    }

    /// Builds a bank of symmetric systems (equal I and D configuration),
    /// one per entry of `configs` — the shape every experiment in the
    /// paper uses.
    ///
    /// # Errors
    ///
    /// Rejects the first invalid configuration (see
    /// [`CacheConfig::validate`]).
    pub fn symmetric(configs: &[CacheConfig]) -> Result<Self, ConfigError> {
        let systems =
            configs.iter().map(|c| CacheSystem::new(*c, *c)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(systems))
    }

    /// Number of member systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// The member systems, in construction order.
    pub fn systems(&self) -> &[CacheSystem] {
        &self.systems
    }

    /// Consumes the bank, returning the member systems with their
    /// accumulated statistics.
    pub fn into_systems(self) -> Vec<CacheSystem> {
        self.systems
    }

    /// The [`BANK_SCHEMA`] sweep counters (all zeros with telemetry
    /// compiled out).
    pub fn telemetry(&self) -> &Counters {
        &self.tele
    }

    /// Dumps the sweep counters plus every member system's per-cache
    /// counters into `reg`: sweep counters under `<prefix>.*`, member
    /// counters under `<prefix>.cfg.<label>.{icache,dcache}.*` (systems
    /// with identical geometry merge into one entry). A no-op with
    /// telemetry compiled out.
    pub fn export_telemetry(&self, reg: &mut Registry, prefix: &str) {
        reg.absorb(prefix, &self.tele);
        for s in &self.systems {
            s.export_telemetry(reg, &format!("{prefix}.cfg.{}", s.label()));
        }
    }
}

impl AccessSink for CacheBank {
    fn fetch(&mut self, addr: u32, bytes: u8) {
        self.tele.bump(BankCounter::Fetches);
        for s in &mut self.systems {
            s.fetch(addr, bytes);
        }
    }

    fn read(&mut self, addr: u32, bytes: u8) {
        self.tele.bump(BankCounter::Reads);
        for s in &mut self.systems {
            s.read(addr, bytes);
        }
    }

    fn write(&mut self, addr: u32, bytes: u8) {
        self.tele.bump(BankCounter::Writes);
        for s in &mut self.systems {
            s.write(addr, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_members_match_dedicated_systems() {
        let cfgs = [CacheConfig::paper(1024, 32), CacheConfig::paper(4096, 32)];
        let mut bank = CacheBank::symmetric(&cfgs).unwrap();
        let mut solo: Vec<CacheSystem> =
            cfgs.iter().map(|c| CacheSystem::new(*c, *c).unwrap()).collect();
        for i in 0..2000u32 {
            let a = (i * 52) % 8192;
            match i % 3 {
                0 => {
                    bank.fetch(a, 4);
                    solo.iter_mut().for_each(|s| s.fetch(a, 4));
                }
                1 => {
                    bank.read(a, 4);
                    solo.iter_mut().for_each(|s| s.read(a, 4));
                }
                _ => {
                    bank.write(a, 4);
                    solo.iter_mut().for_each(|s| s.write(a, 4));
                }
            }
        }
        for (b, s) in bank.systems().iter().zip(&solo) {
            assert_eq!(b.icache(), s.icache());
            assert_eq!(b.dcache(), s.dcache());
        }
    }

    #[test]
    fn bank_telemetry_counts_sweep_and_exports_per_config() {
        let cfgs = [CacheConfig::paper(1024, 32), CacheConfig::paper(4096, 32)];
        let mut bank = CacheBank::symmetric(&cfgs).unwrap();
        for i in 0..300u32 {
            let a = (i * 20) % 4096;
            bank.fetch(a, 4);
            if i % 2 == 0 {
                bank.read(a, 4);
            } else {
                bank.write(a, 4);
            }
        }
        for s in bank.systems() {
            s.reconciles().unwrap();
        }
        let mut reg = d16_telemetry::Registry::new();
        bank.export_telemetry(&mut reg, "grid");
        if d16_telemetry::ENABLED {
            assert_eq!(bank.telemetry().get(BankCounter::Fetches), 300);
            assert_eq!(reg.counter("grid.sweep.fetches"), Some(300));
            assert_eq!(
                reg.counter("grid.cfg.1024B.b32.s8.a1.icache.read.hits").unwrap()
                    + reg.counter("grid.cfg.1024B.b32.s8.a1.icache.read.misses").unwrap(),
                300
            );
            assert!(reg.counter("grid.cfg.4096B.b32.s8.a1.dcache.write.misses").is_some());
        } else {
            assert!(reg.is_empty());
        }
    }

    #[test]
    fn empty_bank_is_a_null_sink() {
        let mut bank = CacheBank::symmetric(&[]).unwrap();
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        bank.fetch(0, 4);
        bank.read(0, 4);
        bank.write(0, 4);
        assert!(bank.into_systems().is_empty());
    }
}
