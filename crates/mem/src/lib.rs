//! # d16-mem — memory-system models
//!
//! The two memory interfaces evaluated in Section 4 of the paper:
//!
//! * [`FetchBuffer`] — the cacheless machine: a `k`-instruction fetch
//!   buffer over a 32- or 64-bit bus and a flat `l`-wait-state memory
//!   (Figures 14–15, Tables 11–12).
//! * [`Cache`] / [`CacheSystem`] — dinero-equivalent sub-blocked caches
//!   with wrap-around prefetch, split I/D (Figures 16–19, Tables 13–16).
//! * [`CacheBank`] — a single-pass multi-configuration evaluator: one
//!   trace sweep drives any number of `CacheSystem`s at once, which is
//!   how the experiment harness regenerates every cache figure from
//!   exactly one replay per trace.
//!
//! All of them consume the access stream of `d16-sim`'s pipeline via the
//! [`d16_sim::AccessSink`] trait, so one functional run can drive any
//! number of memory-system configurations through a recorded trace.
//!
//! ```
//! use d16_mem::{CacheSystem, FetchBuffer};
//! use d16_sim::{AccessSink, ExecStats};
//!
//! // A 64-bit bus delivers four D16 instructions per fetch (k = 4).
//! let mut fb = FetchBuffer::new(8);
//! for addr in (0x1000..0x1010).step_by(2) {
//!     fb.fetch(addr, 2);
//! }
//! assert_eq!(fb.irequests, 2);
//!
//! // The paper's 4K direct-mapped split caches.
//! let mut cs = CacheSystem::paper(4096).unwrap();
//! cs.fetch(0x1000, 2);
//! assert_eq!(cs.icache().read_misses, 1);
//! ```

mod bank;
mod cache;
mod fetch;
mod system;

pub use bank::{BankCounter, CacheBank, BANK_SCHEMA};
pub use cache::{Cache, CacheConfig, CacheStats, ConfigError};
pub use fetch::FetchBuffer;
pub use system::CacheSystem;
