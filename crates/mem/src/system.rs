//! A split I/D cache system fed by a pipeline trace, with the paper's CPI
//! composition (§4.1.1):
//!
//! ```text
//! Cycles = IC + Interlocks + MissPenalty * (IMiss + RMiss + WMiss)
//! ```

use crate::cache::{Cache, CacheConfig, CacheStats, ConfigError};
use d16_sim::{AccessSink, ExecStats};
use d16_telemetry::Registry;

/// Separate on-chip instruction and data caches (the paper's organization).
#[derive(Clone, Debug)]
pub struct CacheSystem {
    icache: Cache,
    dcache: Cache,
}

impl CacheSystem {
    /// Builds a system with the given instruction and data cache
    /// configurations.
    ///
    /// # Errors
    ///
    /// Rejects an invalid configuration (see [`CacheConfig::validate`]).
    pub fn new(icfg: CacheConfig, dcfg: CacheConfig) -> Result<Self, ConfigError> {
        Ok(CacheSystem { icache: Cache::new(icfg)?, dcache: Cache::new(dcfg)? })
    }

    /// Builds the paper's symmetric configuration: equal-size direct-mapped
    /// I and D caches with 32-byte blocks and 8-byte sub-blocks.
    ///
    /// # Errors
    ///
    /// Rejects a `size` the paper geometry cannot realize (not a power of
    /// two, or smaller than one 32-byte block).
    pub fn paper(size: u32) -> Result<Self, ConfigError> {
        Self::new(CacheConfig::paper(size, 32), CacheConfig::paper(size, 32))
    }

    /// Instruction-cache counters.
    pub fn icache(&self) -> &CacheStats {
        self.icache.stats()
    }

    /// Data-cache counters.
    pub fn dcache(&self) -> &CacheStats {
        self.dcache.stats()
    }

    /// Instruction-cache configuration.
    pub fn iconfig(&self) -> &CacheConfig {
        self.icache.config()
    }

    /// Data-cache configuration.
    pub fn dconfig(&self) -> &CacheConfig {
        self.dcache.config()
    }

    /// Rebuilds a system from persisted configurations and statistics
    /// (see [`Cache::from_stats`] — the `d16-store` restore path).
    ///
    /// # Errors
    ///
    /// Propagates either cache's rejection, tagged with the side.
    pub fn from_stats(
        icfg: CacheConfig,
        istats: CacheStats,
        dcfg: CacheConfig,
        dstats: CacheStats,
    ) -> Result<Self, String> {
        Ok(CacheSystem {
            icache: Cache::from_stats(icfg, istats).map_err(|e| format!("icache: {e}"))?,
            dcache: Cache::from_stats(dcfg, dstats).map_err(|e| format!("dcache: {e}"))?,
        })
    }

    /// A stable label for the system's geometry: the shared
    /// [`CacheConfig::label`] when I and D agree (the paper's symmetric
    /// configurations), `i<label>.d<label>` otherwise.
    pub fn label(&self) -> String {
        let (i, d) = (self.icache.config(), self.dcache.config());
        if i == d {
            i.label()
        } else {
            format!("i{}.d{}", i.label(), d.label())
        }
    }

    /// Dumps both caches' telemetry blocks into `reg` under
    /// `<prefix>.icache.*` / `<prefix>.dcache.*`. A no-op with telemetry
    /// compiled out.
    pub fn export_telemetry(&self, reg: &mut Registry, prefix: &str) {
        reg.absorb(&format!("{prefix}.icache"), self.icache.telemetry());
        reg.absorb(&format!("{prefix}.dcache"), self.dcache.telemetry());
    }

    /// Checks both caches' telemetry against their aggregate statistics
    /// (see [`Cache::reconciles`]).
    ///
    /// # Errors
    ///
    /// Returns the first failing identity, tagged with the cache side.
    pub fn reconciles(&self) -> Result<(), String> {
        self.icache.reconciles().map_err(|e| format!("icache: {e}"))?;
        self.dcache.reconciles().map_err(|e| format!("dcache: {e}"))?;
        Ok(())
    }

    /// Demand misses across both caches.
    pub fn total_misses(&self) -> u64 {
        self.icache.stats().misses() + self.dcache.stats().misses()
    }

    /// Total cycles under a given miss penalty, per the paper's formula.
    pub fn cycles(&self, stats: &ExecStats, miss_penalty: u64) -> u64 {
        stats.base_cycles() + miss_penalty * self.total_misses()
    }

    /// Cycles per instruction under a given miss penalty.
    pub fn cpi(&self, stats: &ExecStats, miss_penalty: u64) -> f64 {
        self.cycles(stats, miss_penalty) as f64 / stats.insns as f64
    }

    /// Instruction-side memory traffic in 32-bit words per cycle
    /// (Figure 19's measure).
    pub fn itraffic_words_per_cycle(&self, stats: &ExecStats, miss_penalty: u64) -> f64 {
        let bytes = self.icache.stats().demand_bytes_in + self.icache.stats().prefetch_bytes_in;
        (bytes as f64 / 4.0) / self.cycles(stats, miss_penalty) as f64
    }

    /// Per-instruction miss rates `(ifetch, data read, data write)` — the
    /// paper's Tables 14–16 report read/write misses as a percent of read
    /// and write *instructions* and instruction misses per instruction.
    pub fn miss_rates_per_access(&self) -> (f64, f64, f64) {
        (
            self.icache.stats().read_miss_ratio(),
            self.dcache.stats().read_miss_ratio(),
            self.dcache.stats().write_miss_ratio(),
        )
    }
}

impl AccessSink for CacheSystem {
    fn fetch(&mut self, addr: u32, _bytes: u8) {
        self.icache.read(addr);
    }

    fn read(&mut self, addr: u32, _bytes: u8) {
        self.dcache.read(addr);
    }

    fn write(&mut self, addr: u32, _bytes: u8) {
        self.dcache.write(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_caches_do_not_interfere() {
        let mut s = CacheSystem::paper(1024).unwrap();
        s.fetch(0x1000, 4);
        s.read(0x1000, 4); // same address, different cache
        assert_eq!(s.icache().reads, 1);
        assert_eq!(s.icache().read_misses, 1);
        assert_eq!(s.dcache().reads, 1);
        assert_eq!(s.dcache().read_misses, 1);
    }

    #[test]
    fn cpi_composition() {
        let mut s = CacheSystem::paper(1024).unwrap();
        for a in (0x1000..0x1100).step_by(4) {
            s.fetch(a, 4);
        }
        let stats = ExecStats { insns: 64, interlocks: 6, ..Default::default() };
        let misses = s.total_misses();
        assert!(misses > 0);
        assert_eq!(s.cycles(&stats, 4), 70 + 4 * misses);
        let cpi0 = s.cpi(&stats, 0);
        assert!((cpi0 - 70.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_counts_prefetch() {
        let mut s = CacheSystem::paper(1024).unwrap();
        s.fetch(0x1000, 4);
        let stats = ExecStats { insns: 1, ..Default::default() };
        // One demand sub-block (8B) + one prefetch (8B) = 4 words.
        let words = s.itraffic_words_per_cycle(&stats, 0) * s.cycles(&stats, 0) as f64;
        assert!((words - 4.0).abs() < 1e-12);
    }
}
