//! The cacheless memory interface of Section 4: a fetch buffer of `k`
//! instructions and a flat `l`-wait-state memory.
//!
//! "Without an instruction cache, each fetch request returns a block of `k`
//! instructions, where `k` is the fetch bus width divided by instruction
//! size. When `k` is greater than 1, the instruction block is buffered, and
//! as long as instructions requested are in the buffer, no memory request
//! is made." Performance follows the paper's formula:
//!
//! ```text
//! Cycles = IC + Interlocks + Latency * (IRequests + DRequests)
//! ```

use d16_sim::{AccessSink, ExecStats};

/// Counts external memory requests made through a fetch buffer of
/// `bus_bytes` and a flat data port (every load/store is one request).
#[derive(Copy, Clone, Debug)]
pub struct FetchBuffer {
    bus_bytes: u32,
    buffered: Option<u32>,
    /// Instruction fetch requests issued to memory.
    pub irequests: u64,
    /// Data requests (loads + stores).
    pub drequests: u64,
    /// Instructions delivered (for saturation measures).
    pub instructions: u64,
}

impl FetchBuffer {
    /// Creates a buffer for the given fetch bus width in bytes (4 for the
    /// paper's 32-bit bus, 8 for the 64-bit bus).
    ///
    /// # Panics
    ///
    /// Panics unless `bus_bytes` is a power of two of at least 2.
    pub fn new(bus_bytes: u32) -> Self {
        assert!(bus_bytes.is_power_of_two() && bus_bytes >= 2, "bad bus width {bus_bytes}");
        FetchBuffer { bus_bytes, buffered: None, irequests: 0, drequests: 0, instructions: 0 }
    }

    /// The bus width in bytes.
    pub fn bus_bytes(&self) -> u32 {
        self.bus_bytes
    }

    /// Total external requests.
    pub fn requests(&self) -> u64 {
        self.irequests + self.drequests
    }

    /// Total cycles for a run with the given per-request wait states,
    /// using the paper's formula.
    pub fn cycles(&self, stats: &ExecStats, wait_states: u64) -> u64 {
        stats.base_cycles() + wait_states * self.requests()
    }

    /// Instruction-fetch bus saturation in requests per cycle (Figure 15).
    pub fn fetch_saturation(&self, stats: &ExecStats, wait_states: u64) -> f64 {
        self.irequests as f64 / self.cycles(stats, wait_states) as f64
    }
}

impl AccessSink for FetchBuffer {
    #[inline]
    fn fetch(&mut self, addr: u32, _bytes: u8) {
        self.instructions += 1;
        let block = addr & !(self.bus_bytes - 1);
        if self.buffered != Some(block) {
            self.irequests += 1;
            self.buffered = Some(block);
        }
    }

    #[inline]
    fn read(&mut self, _addr: u32, _bytes: u8) {
        self.drequests += 1;
    }

    #[inline]
    fn write(&mut self, _addr: u32, _bytes: u8) {
        self.drequests += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(buf: &mut FetchBuffer, addrs: &[u32]) {
        for &a in addrs {
            buf.fetch(a, 2);
        }
    }

    #[test]
    fn sequential_d16_amortizes_k2() {
        // Eight 2-byte instructions over a 32-bit bus: 4 requests.
        let mut b = FetchBuffer::new(4);
        feed(&mut b, &[0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(b.irequests, 4);
        // Over a 64-bit bus: k = 4, so 2 requests.
        let mut b = FetchBuffer::new(8);
        feed(&mut b, &[0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(b.irequests, 2);
    }

    #[test]
    fn dlxe_k1_requests_every_word() {
        let mut b = FetchBuffer::new(4);
        for a in (0..32).step_by(4) {
            b.fetch(a, 4);
        }
        assert_eq!(b.irequests, 8, "k=1: every instruction is a request");
    }

    #[test]
    fn branch_back_into_buffer_is_free() {
        let mut b = FetchBuffer::new(8);
        // A 3-instruction D16 loop entirely inside one 8-byte block.
        feed(&mut b, &[8, 10, 12, 8, 10, 12, 8, 10, 12]);
        assert_eq!(b.irequests, 1, "the loop body stays buffered");
    }

    #[test]
    fn branch_out_refetches() {
        let mut b = FetchBuffer::new(4);
        feed(&mut b, &[0, 2, 100, 0]);
        assert_eq!(b.irequests, 3, "leaving and re-entering a block refetches");
    }

    #[test]
    fn data_requests_count_flat() {
        let mut b = FetchBuffer::new(4);
        b.read(0x2000, 4);
        b.write(0x2000, 4);
        b.read(0x2000, 1);
        assert_eq!(b.drequests, 3);
    }

    #[test]
    fn cycle_formula_matches_paper() {
        let mut b = FetchBuffer::new(4);
        feed(&mut b, &[0, 2, 4, 6]);
        b.read(0x2000, 4);
        let stats = ExecStats { insns: 4, interlocks: 1, loads: 1, ..Default::default() };
        // Cycles = IC + Interlocks + l * (IReq + DReq) = 5 + l*3.
        assert_eq!(b.cycles(&stats, 0), 5);
        assert_eq!(b.cycles(&stats, 2), 11);
        let sat = b.fetch_saturation(&stats, 2);
        assert!((sat - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two_bus() {
        let _ = FetchBuffer::new(6);
    }
}
