//! Property-style tests on the memory models: accounting identities,
//! inclusion monotonicity, fetch-buffer conservation laws, and the
//! single-pass/serial replay equivalence of [`CacheBank`].
//!
//! Deterministic `d16-testkit` generators replace the original `proptest`
//! strategies (offline builds, DESIGN.md §7).

use d16_mem::{Cache, CacheBank, CacheConfig, CacheSystem, FetchBuffer};
use d16_sim::{AccessSink, TraceRecorder};
use d16_testkit::{cases, Rng};

fn config(rng: &mut Rng) -> CacheConfig {
    CacheConfig {
        size: 1024 << rng.below(4),
        block: 16 << rng.below(3),
        sub_block: 8,
        assoc: 1 << rng.below(2),
        wrap_prefetch: rng.bool(),
    }
}

/// Mixed strided and random accesses over a 64K region; bool = write.
fn addr_stream(rng: &mut Rng) -> Vec<(u32, bool)> {
    let n = 1 + rng.below(600) as usize;
    (0..n).map(|_| (rng.below(16384) * 4, rng.bool())).collect()
}

/// Hits + misses == accesses, misses <= accesses, ratios in [0, 1].
#[test]
fn cache_accounting() {
    cases(200, |case, rng| {
        let cfg = config(rng);
        let stream = addr_stream(rng);
        let mut c = Cache::new(cfg).unwrap();
        for (a, w) in &stream {
            if *w {
                c.write(*a);
            } else {
                c.read(*a);
            }
        }
        let s = *c.stats();
        assert_eq!(s.accesses(), stream.len() as u64, "case {case}");
        assert!(s.read_misses <= s.reads, "case {case}");
        assert!(s.write_misses <= s.writes, "case {case}");
        assert!((0.0..=1.0).contains(&s.miss_ratio()), "case {case}");
        // Demand traffic only flows on read misses; each brings at most
        // two sub-blocks (demand + prefetch).
        assert!(s.demand_bytes_in <= s.read_misses * u64::from(cfg.sub_block), "case {case}");
        assert!(s.prefetch_bytes_in <= s.read_misses * u64::from(cfg.sub_block), "case {case}");
    });
}

/// Repeating the same stream twice never increases the second pass's
/// misses beyond the first (warm cache).
#[test]
fn warm_pass_not_worse() {
    cases(200, |case, rng| {
        let cfg = config(rng);
        let stream = addr_stream(rng);
        let mut c1 = Cache::new(cfg).unwrap();
        for (a, w) in &stream {
            if *w {
                c1.write(*a);
            } else {
                c1.read(*a);
            }
        }
        let cold = c1.stats().misses();
        for (a, w) in &stream {
            if *w {
                c1.write(*a);
            } else {
                c1.read(*a);
            }
        }
        let warm = c1.stats().misses() - cold;
        assert!(warm <= cold, "case {case}: warm {warm} > cold {cold}");
    });
}

/// A repeated-loop access pattern misses monotonically less as the cache
/// doubles (true for looping patterns in direct-mapped caches; random
/// single-pass streams can violate this via conflict luck, so the
/// property is stated over loops).
#[test]
fn loops_like_bigger_caches() {
    cases(100, |case, rng| {
        let n = 1 + rng.below(128) as usize;
        let seed: Vec<u32> = (0..n).map(|_| rng.below(2048)).collect();
        let mut last = u64::MAX;
        for size in [1024u32, 2048, 4096, 8192] {
            let mut c = Cache::new(CacheConfig::paper(size, 32)).unwrap();
            for _ in 0..4 {
                for a in &seed {
                    c.read(a * 4);
                }
            }
            assert!(c.stats().misses() <= last, "case {case}, size {size}");
            last = c.stats().misses();
        }
    });
}

/// Fetch-buffer conservation: requests never exceed fetches, and a
/// sequential stream of `n` halfwords over a `k`-wide bus makes
/// ceil(n / k) requests.
#[test]
fn fetch_buffer_conservation() {
    cases(300, |case, rng| {
        let n = 1 + rng.below(2000);
        let bus = 4u32 << rng.below(2); // 4 or 8 bytes
        let mut fb = FetchBuffer::new(bus);
        for i in 0..n {
            fb.fetch(0x1000 + i * 2, 2);
        }
        assert_eq!(fb.instructions, u64::from(n), "case {case}");
        assert!(fb.irequests <= u64::from(n), "case {case}");
        let k = bus / 2;
        let expected = n.div_ceil(k);
        assert_eq!(fb.irequests, u64::from(expected), "case {case}");
    });
}

/// The split system routes fetches and data to different caches.
#[test]
fn split_system_routing() {
    cases(200, |case, rng| {
        let stream = addr_stream(rng);
        let mut cs = CacheSystem::paper(2048).unwrap();
        let mut fetches = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (a, w) in &stream {
            if *w {
                cs.write(*a, 4);
                writes += 1;
            } else if a % 8 == 0 {
                cs.fetch(*a, 4);
                fetches += 1;
            } else {
                cs.read(*a, 4);
                reads += 1;
            }
        }
        assert_eq!(cs.icache().reads, fetches, "case {case}");
        assert_eq!(cs.dcache().reads, reads, "case {case}");
        assert_eq!(cs.dcache().writes, writes, "case {case}");
    });
}

/// The differential gate for the single-pass engine: feeding a random
/// trace through a [`CacheBank`] of N configurations must produce, for
/// every member, statistics bit-identical to a dedicated serial replay of
/// the same trace through that configuration alone.
#[test]
fn bank_single_pass_equals_serial_replays() {
    cases(60, |case, rng| {
        // A random trace with all three access kinds and mixed widths.
        let mut trace = TraceRecorder::new();
        let n = 200 + rng.below(2000);
        let mut pc = 0x1000u32;
        for _ in 0..n {
            match rng.below(4) {
                0 | 1 => {
                    trace.fetch(pc, if rng.bool() { 2 } else { 4 });
                    // Mostly sequential with occasional branches, like a
                    // real instruction stream.
                    pc = if rng.below(8) == 0 { rng.below(16384) * 2 } else { pc + 4 };
                }
                2 => trace.read(rng.below(16384) * 4, *rng.pick(&[1u8, 2, 4])),
                _ => trace.write(rng.below(16384) * 4, *rng.pick(&[1u8, 2, 4])),
            }
        }
        // A random set of 1-6 distinct-ish configurations.
        let ncfg = 1 + rng.below(6) as usize;
        let cfgs: Vec<CacheConfig> = (0..ncfg).map(|_| config(rng)).collect();

        let mut bank = CacheBank::symmetric(&cfgs).unwrap();
        trace.replay(&mut bank);

        for (cfg, banked) in cfgs.iter().zip(bank.systems()) {
            let mut solo = CacheSystem::new(*cfg, *cfg).unwrap();
            trace.replay(&mut solo);
            assert_eq!(banked.icache(), solo.icache(), "case {case}, cfg {cfg:?}");
            assert_eq!(banked.dcache(), solo.dcache(), "case {case}, cfg {cfg:?}");
        }
    });
}
