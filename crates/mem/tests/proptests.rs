//! Property tests on the memory models: accounting identities, inclusion
//! monotonicity, and fetch-buffer conservation laws.

use d16_mem::{Cache, CacheConfig, CacheSystem, FetchBuffer};
use d16_sim::AccessSink;
use proptest::prelude::*;

fn config() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, 0u32..3, 0u32..2, any::<bool>()).prop_map(|(s, b, a, p)| CacheConfig {
        size: 1024 << s,
        block: 16 << b,
        sub_block: 8,
        assoc: 1 << a,
        wrap_prefetch: p,
    })
}

fn addr_stream() -> impl Strategy<Value = Vec<(u32, bool)>> {
    // Mixed strided and random accesses over a 64K region; bool = write.
    proptest::collection::vec((0u32..16384, any::<bool>()), 1..600)
        .prop_map(|v| v.into_iter().map(|(a, w)| (a * 4, w)).collect())
}

proptest! {
    /// Hits + misses == accesses, misses <= accesses, ratios in [0, 1].
    #[test]
    fn cache_accounting(cfg in config(), stream in addr_stream()) {
        let mut c = Cache::new(cfg);
        for (a, w) in &stream {
            if *w {
                c.write(*a);
            } else {
                c.read(*a);
            }
        }
        let s = *c.stats();
        prop_assert_eq!(s.accesses(), stream.len() as u64);
        prop_assert!(s.read_misses <= s.reads);
        prop_assert!(s.write_misses <= s.writes);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
        // Demand traffic only flows on read misses; each brings at most
        // two sub-blocks (demand + prefetch).
        prop_assert!(s.demand_bytes_in <= s.read_misses * cfg.sub_block as u64);
        prop_assert!(s.prefetch_bytes_in <= s.read_misses * cfg.sub_block as u64);
    }

    /// Repeating the same stream twice never increases the second pass's
    /// misses beyond the first (warm cache).
    #[test]
    fn warm_pass_not_worse(cfg in config(), stream in addr_stream()) {
        let mut c1 = Cache::new(cfg);
        for (a, w) in &stream {
            if *w { c1.write(*a); } else { c1.read(*a); }
        }
        let cold = c1.stats().misses();
        for (a, w) in &stream {
            if *w { c1.write(*a); } else { c1.read(*a); }
        }
        let warm = c1.stats().misses() - cold;
        prop_assert!(warm <= cold);
    }

    /// A repeated-loop access pattern misses monotonically less as the
    /// cache doubles (true for looping patterns in direct-mapped caches;
    /// random single-pass streams can violate this via conflict luck, so
    /// the property is stated over loops).
    #[test]
    fn loops_like_bigger_caches(seed in proptest::collection::vec(0u32..2048, 1..128)) {
        let mut last = u64::MAX;
        for size in [1024u32, 2048, 4096, 8192] {
            let mut c = Cache::new(CacheConfig::paper(size, 32));
            for _ in 0..4 {
                for a in &seed {
                    c.read(a * 4);
                }
            }
            prop_assert!(c.stats().misses() <= last);
            last = c.stats().misses();
        }
    }

    /// Fetch-buffer conservation: requests never exceed fetches, and a
    /// sequential stream of `n` halfwords over a `k`-wide bus makes
    /// ceil(n / k) requests.
    #[test]
    fn fetch_buffer_conservation(n in 1u32..2000, shift in 0u32..2) {
        let bus = 4u32 << shift; // 4 or 8 bytes
        let mut fb = FetchBuffer::new(bus);
        for i in 0..n {
            fb.fetch(0x1000 + i * 2, 2);
        }
        prop_assert_eq!(fb.instructions, n as u64);
        prop_assert!(fb.irequests <= n as u64);
        let k = bus / 2;
        let expected = (n + k - 1) / k;
        prop_assert_eq!(fb.irequests, expected as u64);
    }

    /// The split system routes fetches and data to different caches.
    #[test]
    fn split_system_routing(stream in addr_stream()) {
        let mut cs = CacheSystem::paper(2048);
        let mut fetches = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (a, w) in &stream {
            if *w {
                cs.write(*a, 4);
                writes += 1;
            } else if a % 8 == 0 {
                cs.fetch(*a, 4);
                fetches += 1;
            } else {
                cs.read(*a, 4);
                reads += 1;
            }
        }
        prop_assert_eq!(cs.icache().reads, fetches);
        prop_assert_eq!(cs.dcache().reads, reads);
        prop_assert_eq!(cs.dcache().writes, writes);
    }
}
