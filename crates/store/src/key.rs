//! Stable content hashing: how artifacts are addressed.
//!
//! A [`CacheKey`] is a 128-bit FNV-1a digest over *length-prefixed*
//! fields, seeded by a domain string. The length prefixes make the
//! hash injective over field boundaries (`("ab", "c")` and `("a", "bc")`
//! hash differently), and the domain string keeps keys from different
//! artifact producers from colliding even over identical inputs.
//!
//! The hash is defined by this module alone — no `std::hash`, no
//! platform-dependent layout — so a key computed today addresses the
//! same artifact on any machine and any future build that keeps the
//! producers' toolchain tags unchanged.

use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A content address: the finished digest of a [`StableHasher`].
///
/// Ordered and hashable so keys can index in-memory maps; displayed as
/// 32 lowercase hex digits, which is also the on-disk file stem.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// The key as 32 lowercase hex digits (the on-disk file stem).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Little-endian bytes, for feeding one key into another hasher
    /// (composite artifacts hash the keys of their inputs, not the
    /// inputs themselves).
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a/128 over length-prefixed fields.
///
/// ```
/// use d16_store::StableHasher;
///
/// let mut h = StableHasher::new("example.artifact");
/// h.field_str("source text");
/// h.field_u64(42);
/// let key = h.finish();
/// assert_eq!(key.hex().len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// Starts a hash for the given artifact domain.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.field_bytes(domain.as_bytes());
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one byte-string field (length-prefixed).
    pub fn field_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
        self
    }

    /// Hashes one string field.
    pub fn field_str(&mut self, s: &str) -> &mut Self {
        self.field_bytes(s.as_bytes())
    }

    /// Hashes one `u64` field.
    pub fn field_u64(&mut self, v: u64) -> &mut Self {
        self.field_bytes(&v.to_le_bytes())
    }

    /// Hashes one `u32` field.
    pub fn field_u32(&mut self, v: u32) -> &mut Self {
        self.field_bytes(&v.to_le_bytes())
    }

    /// Hashes one boolean field.
    pub fn field_bool(&mut self, v: bool) -> &mut Self {
        self.field_bytes(&[u8::from(v)])
    }

    /// Hashes another artifact's key as a field.
    pub fn field_key(&mut self, key: CacheKey) -> &mut Self {
        self.field_bytes(&key.to_bytes())
    }

    /// The finished 128-bit content address.
    #[must_use]
    pub fn finish(&self) -> CacheKey {
        CacheKey(self.state)
    }
}

/// FNV-1a/64 of a byte string: the envelope payload digest.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_across_calls() {
        let key = |src: &str| {
            let mut h = StableHasher::new("test");
            h.field_str(src);
            h.finish()
        };
        assert_eq!(key("abc"), key("abc"));
        assert_ne!(key("abc"), key("abd"));
    }

    #[test]
    fn field_boundaries_matter() {
        let mut a = StableHasher::new("test");
        a.field_str("ab").field_str("c");
        let mut b = StableHasher::new("test");
        b.field_str("a").field_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domains_separate_identical_inputs() {
        let mut a = StableHasher::new("cell");
        a.field_u64(7);
        let mut b = StableHasher::new("grid");
        b.field_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_32_lowercase_digits() {
        let k = StableHasher::new("x").finish();
        let h = k.hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(h, k.to_string());
        assert_eq!(CacheKey(u128::from_le_bytes(k.to_bytes())), k);
    }

    #[test]
    fn fnv64_known_answer() {
        // FNV-1a test vectors: empty string and "a".
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
