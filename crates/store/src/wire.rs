//! A minimal little-endian payload codec for store entries.
//!
//! Every artifact codec (images, cell records, grid sweeps) is built on
//! these two types so the byte layout is defined in exactly one place:
//! fixed-width little-endian integers, length-prefixed byte strings, and
//! one-byte option flags. [`Reader`] methods return `Option` so a decode
//! of a structurally damaged payload degrades to `None` — which the
//! store counts as corruption — instead of panicking.

/// Builds a payload.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// The finished payload bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Decodes a payload built by [`Writer`]. Every method returns `None`
/// once the input runs short or violates the expected shape.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` from the beginning.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Option<i32> {
        Some(i32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a boolean byte (anything but 0/1 is malformed).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = usize::try_from(self.u64()?).ok()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Succeeds only if the whole payload was consumed — trailing bytes
    /// mean the payload is not what the codec expected.
    pub fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        let mut w = Writer::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).i32(-5).bool(true).bytes(b"xy").str("hëllo");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.i32(), Some(-5));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.bytes(), Some(&b"xy"[..]));
        assert_eq!(r.str(), Some("hëllo"));
        assert_eq!(r.finish(), Some(()));
    }

    #[test]
    fn short_input_is_none_not_panic() {
        let mut w = Writer::new();
        w.u64(3).str("abc");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            // Whatever partial reads succeed, the sequence must fail
            // before producing both fields and finishing cleanly.
            let full = r.u64().is_some() && r.str().is_some() && r.finish().is_some();
            assert!(!full, "cut at {cut} decoded fully");
        }
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.finish(), None);
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = Reader::new(&[9]);
        assert_eq!(r.bool(), None);
    }

    #[test]
    fn oversized_length_prefix_is_none() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).bytes(), None);
    }
}
