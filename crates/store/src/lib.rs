//! # d16-store — content-addressed artifacts for incremental runs
//!
//! Every expensive product of the experiment pipeline — compiled images,
//! per-cell [`Measurement`] rows, recorded access traces, cache-grid
//! sweeps — is a pure function of (source text, target knobs, toolchain
//! version). This crate persists those products on disk keyed by a
//! stable content hash of exactly those inputs, so a rerun recomputes
//! only what actually changed.
//!
//! Design rules, in order:
//!
//! 1. **Never serve damaged data.** Every entry is wrapped in a
//!    checksummed envelope (magic, format version, payload length,
//!    FNV-1a/64 digest). A truncated write, a flipped bit, or a
//!    foreign-format file fails the envelope check; the entry is
//!    evicted, counted in `corrupt_evicted`, and the artifact is
//!    silently recomputed. A cache can lose entries; it must not lie.
//! 2. **Atomic commit, single writer.** Writes go to a per-process temp
//!    file in the entry's directory and are published with `rename`,
//!    which replaces atomically on POSIX. On top of that, every commit
//!    — and every eviction — holds a per-entry lock file (created with
//!    `O_EXCL`, retried with backoff, broken when stale), so concurrent
//!    `--jobs N` workers, two whole `repro` processes, or a pool of
//!    `d16-serve` daemons sharing one store serialize their mutations
//!    of any single entry. Readers never lock: `rename` guarantees they
//!    see either the old bytes or the new bytes, never a mix.
//! 3. **Best-effort by construction.** A failed read is a miss; a
//!    failed write is skipped; a lock held past the retry budget is
//!    counted in `lock_contention` and the mutation abandoned. The
//!    store can accelerate a run, never fail or block one: every error
//!    path degrades to recomputation.
//!
//! Keys come from [`StableHasher`] (see `key.rs`): a domain string plus
//! length-prefixed fields, hashed with FNV-1a/128. Producers include
//! their own toolchain tag in the key material, so bumping a tag when
//! codegen changes retires every stale entry at once — nothing is ever
//! mutated in place.
//!
//! [`Measurement`]: ../d16_core/measure/struct.Measurement.html

mod key;
mod wire;

pub use key::{fnv64, CacheKey, StableHasher};
pub use wire::{Reader, Writer};

use d16_telemetry::Registry;
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// On-disk entry format version; part of every envelope. Bump on any
/// envelope-layout change so old stores read as misses, not garbage.
pub const FORMAT: u32 = 1;

/// Envelope magic: identifies a d16-store entry file.
pub const MAGIC: [u8; 4] = *b"d16s";

/// Envelope header size: magic + format + payload length + digest.
const HEADER: usize = 4 + 4 + 8 + 8;

/// How long a commit waits for a contended entry lock before giving up
/// and skipping the cache (≈ attempts × poll interval).
const PUT_LOCK_ATTEMPTS: u32 = 250;

/// How long an eviction waits. Much shorter: if someone holds the lock
/// they are probably replacing the damaged entry anyway.
const EVICT_LOCK_ATTEMPTS: u32 = 20;

/// Poll interval between lock acquisition attempts.
const LOCK_POLL: Duration = Duration::from_millis(1);

/// A lock older than this is presumed abandoned by a crashed process
/// and broken. Real holders keep a lock for one temp-file write plus a
/// rename — microseconds to low milliseconds.
const LOCK_STALE: Duration = Duration::from_secs(5);

/// Operation counters, updated atomically so concurrent workers can
/// share one [`Store`]. These are *store* telemetry, deliberately kept
/// out of the experiment registry: the `--metrics-json` dump must stay
/// byte-identical between cold and warm runs (see DESIGN.md §6), so
/// hit/miss counts only ever appear in the timing (non-diffed) half of
/// a report.
#[derive(Debug, Default)]
pub struct StoreStats {
    hit: AtomicU64,
    miss: AtomicU64,
    write: AtomicU64,
    corrupt_evicted: AtomicU64,
    io_errors: AtomicU64,
    lock_contention: AtomicU64,
}

/// A point-in-time copy of [`StoreStats`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Entries served from disk.
    pub hit: u64,
    /// Lookups that found nothing servable (includes evictions).
    pub miss: u64,
    /// Entries committed.
    pub write: u64,
    /// Entries evicted because the envelope or payload failed to check.
    pub corrupt_evicted: u64,
    /// Lookups or commits abandoned on a filesystem error, each one
    /// degraded to recomputation (the `store-io` failpoint lands here).
    pub io_errors: u64,
    /// Commits or evictions abandoned because another writer held the
    /// entry lock past the retry budget; degraded to recomputation.
    pub lock_contention: u64,
}

impl StatsSnapshot {
    /// `(name, value)` pairs in [`d16_telemetry::STORE_SCHEMA`] order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 6] {
        let names = d16_telemetry::STORE_SCHEMA.names();
        [
            (names[0], self.hit),
            (names[1], self.miss),
            (names[2], self.write),
            (names[3], self.corrupt_evicted),
            (names[4], self.io_errors),
            (names[5], self.lock_contention),
        ]
    }
}

/// What [`Store::verify`] found and did.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct VerifyReport {
    /// Entry files scanned.
    pub scanned: u64,
    /// Entries whose envelope checked out.
    pub ok: u64,
    /// Entries evicted (bad envelope; also bumps `corrupt_evicted`).
    pub evicted: u64,
    /// Abandoned commit temp files removed (a crashed writer's leavings;
    /// harmless — lookups never read them — but worth sweeping).
    pub temps_removed: u64,
    /// Stale entry locks removed (a crashed writer died holding them;
    /// live lookups break these on demand, `verify` sweeps them early).
    pub locks_removed: u64,
}

/// A content-addressed artifact store rooted at one directory.
///
/// Layout: `root/<kind>/<first two hex digits>/<32 hex digits>.bin`,
/// one checksummed envelope per entry. The two-digit fanout keeps
/// directories small; `kind` separates artifact namespaces (`image`,
/// `cell`, `grid`, ...) for selective wiping and inspection.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    stats: StoreStats,
    seq: AtomicU64,
}

/// A held per-entry lock; the lock file is removed on drop.
struct EntryLock {
    path: PathBuf,
}

impl Drop for EntryLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The lock file guarding mutations of `entry`: the entry file name
/// plus `.lock`, in the same directory (so `rename` and the lock live
/// on one filesystem).
fn lock_path(entry: &Path) -> PathBuf {
    let mut name = entry.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".lock");
    entry.with_file_name(name)
}

/// Whether a lock file was abandoned by a crashed holder. The holder
/// stamps the lock with its wall-clock creation time in nanoseconds;
/// an unreadable or garbled stamp (holder died mid-write) falls back
/// to the file's mtime. Clock skew into the future reads as fresh.
fn lock_is_stale(path: &Path) -> bool {
    let by_stamp = fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse::<u128>().ok())
        .and_then(|stamp| {
            let now = SystemTime::now().duration_since(UNIX_EPOCH).ok()?.as_nanos();
            Some(now.saturating_sub(stamp) > LOCK_STALE.as_nanos())
        });
    if let Some(stale) = by_stamp {
        return stale;
    }
    fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > LOCK_STALE)
}

/// Tries to take the entry lock: `O_EXCL` create, polled up to
/// `attempts` times, breaking locks that look abandoned. `None` means
/// the lock stayed contended (or the directory is unwritable) — the
/// caller degrades rather than blocks.
fn acquire_lock(path: &Path, attempts: u32) -> Option<EntryLock> {
    for _ in 0..attempts {
        match fs::OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                let stamp =
                    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0);
                let _ = write!(f, "{stamp}");
                return Some(EntryLock { path: path.to_path_buf() });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if lock_is_stale(path) {
                    // Break it and retry immediately; if several
                    // processes break the same stale lock at once,
                    // `create_new` still admits exactly one.
                    let _ = fs::remove_file(path);
                } else {
                    std::thread::sleep(LOCK_POLL);
                }
            }
            Err(_) => return None,
        }
    }
    None
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root, stats: StoreStats::default(), seq: AtomicU64::new(0) })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of an entry (whether or not it exists).
    #[must_use]
    pub fn entry_path(&self, kind: &str, key: CacheKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(kind).join(&hex[..2]).join(format!("{hex}.bin"))
    }

    /// Looks up an entry and decodes it. `decode` returning `None` is
    /// treated exactly like a bad checksum: the file cannot be what the
    /// key promises, so it is evicted and the lookup is a miss. It may
    /// be called more than once: eviction revalidates under the entry
    /// lock, and if a concurrent writer replaced the damaged bytes in
    /// the meantime the fresh bytes are decoded and served instead.
    ///
    /// The read itself is lock-free — `rename` commits mean a reader
    /// sees whole old bytes or whole new bytes, never a mix.
    pub fn get_with<T>(
        &self,
        kind: &str,
        key: CacheKey,
        mut decode: impl FnMut(&[u8]) -> Option<T>,
    ) -> Option<T> {
        if d16_testkit::faults::armed_for("store-io", kind) {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            self.stats.miss.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(kind, key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(e) => {
                // An absent entry is the normal cold-store miss; any other
                // failure is an I/O error worth accounting separately.
                if e.kind() != io::ErrorKind::NotFound {
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.miss.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match unwrap_envelope(&data).and_then(&mut decode) {
            Some(v) => {
                self.stats.hit.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => self.evict_corrupt(&path, decode),
        }
    }

    /// Evicts an entry whose bytes failed to decode — but only under
    /// the entry lock, and only after revalidating. Without the lock,
    /// this read-decide-unlink sequence races a concurrent `put`: the
    /// reader decodes stale damaged bytes, the writer commits a fresh
    /// good entry, and the reader's unlink then destroys it. Under the
    /// lock no commit can interleave, and a revalidating re-read turns
    /// "the writer beat us to it" into a served hit.
    fn evict_corrupt<T>(
        &self,
        path: &Path,
        mut decode: impl FnMut(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let Some(_lock) = acquire_lock(&lock_path(path), EVICT_LOCK_ATTEMPTS) else {
            // Whoever holds the lock is replacing the entry; leave it.
            self.stats.lock_contention.fetch_add(1, Ordering::Relaxed);
            self.stats.miss.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let current = fs::read(path).ok();
        match current.as_deref().and_then(unwrap_envelope).and_then(&mut decode) {
            Some(v) => {
                self.stats.hit.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                if current.is_some() {
                    let _ = fs::remove_file(path);
                    self.stats.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.miss.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Commits an entry: entry lock, envelope, temp file, atomic
    /// rename. Best effort — on any I/O failure the entry is simply
    /// not cached (and the temp file removed if it got that far); if
    /// the entry lock stays contended past the retry budget the commit
    /// is skipped and counted in `lock_contention`.
    pub fn put(&self, kind: &str, key: CacheKey, payload: &[u8]) {
        if d16_testkit::faults::armed_for("store-io", kind) {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let path = self.entry_path(kind, key);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(_lock) = acquire_lock(&lock_path(&path), PUT_LOCK_ATTEMPTS) else {
            self.stats.lock_contention.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let tmp = dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::write(&tmp, wrap_envelope(payload)).is_err() {
            let _ = fs::remove_file(&tmp);
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.write.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the operation counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hit: self.stats.hit.load(Ordering::Relaxed),
            miss: self.stats.miss.load(Ordering::Relaxed),
            write: self.stats.write.load(Ordering::Relaxed),
            corrupt_evicted: self.stats.corrupt_evicted.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            lock_contention: self.stats.lock_contention.load(Ordering::Relaxed),
        }
    }

    /// Dumps the operation counters into a registry as `store.*` (the
    /// [`d16_telemetry::STORE_SCHEMA`] names). Callers must keep this
    /// out of any cold-vs-warm diffed registry — see [`StoreStats`].
    pub fn export_telemetry(&self, reg: &mut Registry) {
        for (name, v) in self.stats().named() {
            reg.add_counter(format!("store.{name}"), v);
        }
    }

    /// Scans every entry, evicting any whose envelope fails to check
    /// and sweeping abandoned commit temp files. Lookups do the same
    /// check per entry anyway; `verify` exists to front-load it
    /// (`repro --store-verify`) and to report what a store holds.
    ///
    /// # Errors
    ///
    /// Fails only on directory-walk I/O errors, not on bad entries.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut rep = VerifyReport::default();
        let mut dirs = vec![self.root.clone()];
        while let Some(dir) = dirs.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if entry.file_type()?.is_dir() {
                    dirs.push(path);
                    continue;
                }
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.contains(".tmp.") {
                    if fs::remove_file(&path).is_ok() {
                        rep.temps_removed += 1;
                    }
                    continue;
                }
                if name.ends_with(".lock") {
                    // Only abandoned locks are swept; a fresh one has a
                    // live holder mid-commit and must be left alone.
                    if lock_is_stale(&path) && fs::remove_file(&path).is_ok() {
                        rep.locks_removed += 1;
                    }
                    continue;
                }
                if !name.ends_with(".bin") {
                    continue;
                }
                rep.scanned += 1;
                let ok = fs::read(&path).ok().as_deref().and_then(unwrap_envelope).is_some();
                if ok {
                    rep.ok += 1;
                } else if fs::remove_file(&path).is_ok() {
                    rep.evicted += 1;
                    self.stats.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(rep)
    }
}

/// Wraps a payload in the checksummed envelope.
#[must_use]
pub fn wrap_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Checks an envelope, returning the payload only if the magic, format
/// version, length, and digest all agree.
#[must_use]
pub fn unwrap_envelope(data: &[u8]) -> Option<&[u8]> {
    let header = data.get(..HEADER)?;
    if header[..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(header[4..8].try_into().ok()?) != FORMAT {
        return None;
    }
    let len = usize::try_from(u64::from_le_bytes(header[8..16].try_into().ok()?)).ok()?;
    let digest = u64::from_le_bytes(header[16..HEADER].try_into().ok()?);
    let payload = data.get(HEADER..)?;
    if payload.len() != len || fnv64(payload) != digest {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d16_testkit::TempDir;

    fn key(n: u64) -> CacheKey {
        let mut h = StableHasher::new("test");
        h.field_u64(n);
        h.finish()
    }

    #[test]
    fn roundtrip_hit_and_miss() {
        let dir = TempDir::new("roundtrip");
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())), None);
        store.put("cell", key(1), b"payload");
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())).unwrap(), b"payload");
        assert_eq!(store.get_with("other-kind", key(1), |b| Some(b.to_vec())), None);
        let s = store.stats();
        assert_eq!((s.hit, s.miss, s.write, s.corrupt_evicted), (1, 2, 1, 0));
    }

    #[test]
    fn decode_failure_counts_as_corruption() {
        let dir = TempDir::new("decode");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"not what the codec wants");
        assert_eq!(store.get_with("cell", key(1), |_| None::<()>), None);
        assert_eq!(store.stats().corrupt_evicted, 1);
        assert!(!store.entry_path("cell", key(1)).exists(), "evicted from disk");
    }

    #[test]
    fn envelope_rejects_each_kind_of_damage() {
        let good = wrap_envelope(b"abc");
        assert_eq!(unwrap_envelope(&good), Some(&b"abc"[..]));
        // Truncation, anywhere.
        for cut in 0..good.len() {
            assert_eq!(unwrap_envelope(&good[..cut]), None, "cut at {cut}");
        }
        // A flipped bit, anywhere.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert_eq!(unwrap_envelope(&bad), None, "flip at {i}");
        }
        // Wrong format version.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(FORMAT + 1).to_le_bytes());
        assert_eq!(unwrap_envelope(&bad), None);
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert_eq!(unwrap_envelope(&bad), None);
    }

    #[test]
    fn put_replaces_atomically_and_leaves_no_temps() {
        let dir = TempDir::new("replace");
        let store = Store::open(dir.path()).unwrap();
        store.put("image", key(2), b"v1");
        store.put("image", key(2), b"v2");
        assert_eq!(store.get_with("image", key(2), |b| Some(b.to_vec())).unwrap(), b"v2");
        let rep = store.verify().unwrap();
        assert_eq!((rep.scanned, rep.ok, rep.evicted), (1, 1, 0));
        assert_eq!(
            (rep.temps_removed, rep.locks_removed),
            (0, 0),
            "commit cleaned up after itself"
        );
    }

    #[test]
    fn verify_evicts_corrupt_and_sweeps_temps() {
        let dir = TempDir::new("verify");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"ok");
        store.put("cell", key(2), b"damaged soon");
        let victim = store.entry_path("cell", key(2));
        let mut raw = fs::read(&victim).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&victim, raw).unwrap();
        // A crashed writer's abandoned temp file.
        let crashed = victim.with_file_name(format!("{}.tmp.999.0", key(2).hex()));
        fs::write(&crashed, b"partial").unwrap();
        // A crashed writer's abandoned lock (stamp far in the past) and
        // a live writer's fresh lock.
        let stale_lock = lock_path(&store.entry_path("cell", key(3)));
        fs::create_dir_all(stale_lock.parent().unwrap()).unwrap();
        fs::write(&stale_lock, b"0").unwrap();
        let fresh_lock = lock_path(&store.entry_path("cell", key(1)));
        let held = acquire_lock(&fresh_lock, 1).unwrap();

        let rep = store.verify().unwrap();
        assert_eq!((rep.scanned, rep.ok, rep.evicted), (2, 1, 1));
        assert_eq!((rep.temps_removed, rep.locks_removed), (1, 1));
        assert!(!victim.exists());
        assert!(!crashed.exists());
        assert!(!stale_lock.exists(), "abandoned lock swept");
        assert!(fresh_lock.exists(), "held lock left for its holder");
        drop(held);
        assert_eq!(store.stats().corrupt_evicted, 1);
        // The good entry still serves.
        assert!(store.get_with("cell", key(1), |b| Some(b.to_vec())).is_some());
    }

    #[test]
    fn concurrent_writers_to_one_key_are_safe() {
        let dir = TempDir::new("concurrent");
        let store = Store::open(dir.path()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        store.put("cell", key(7), b"same bytes from everyone");
                        let got = store.get_with("cell", key(7), |b| Some(b.to_vec()));
                        if let Some(b) = got {
                            assert_eq!(b, b"same bytes from everyone");
                        }
                    }
                });
            }
        });
        assert_eq!(store.stats().corrupt_evicted, 0);
        let rep = store.verify().unwrap();
        assert_eq!(rep.evicted, 0);
    }

    #[test]
    fn export_telemetry_uses_store_prefix() {
        let dir = TempDir::new("tele");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"x");
        store.get_with("cell", key(1), |b| Some(b.len()));
        let mut reg = Registry::new();
        store.export_telemetry(&mut reg);
        assert_eq!(reg.counter("store.hit"), Some(1));
        assert_eq!(reg.counter("store.miss"), Some(0));
        assert_eq!(reg.counter("store.write"), Some(1));
        assert_eq!(reg.counter("store.corrupt_evicted"), Some(0));
        assert_eq!(reg.counter("store.io_errors"), Some(0));
        assert_eq!(reg.counter("store.lock_contention"), Some(0));
    }

    #[test]
    fn eviction_revalidates_under_the_lock() {
        // The torn-read race: a reader decodes damaged bytes, a writer
        // commits fresh good bytes, and an unlocked eviction would then
        // unlink the good entry. Simulated deterministically: the first
        // decode call rejects, the lock-held revalidation re-reads and
        // the second decode accepts — the entry must survive and serve.
        let dir = TempDir::new("revalidate");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"fresh");
        let mut calls = 0;
        let got = store.get_with("cell", key(1), |b| {
            calls += 1;
            if calls == 1 {
                None // what a stale torn view would have decoded to
            } else {
                Some(b.to_vec())
            }
        });
        assert_eq!(got.unwrap(), b"fresh");
        assert_eq!(calls, 2, "revalidation re-decoded the current bytes");
        assert!(store.entry_path("cell", key(1)).exists(), "good entry not destroyed");
        let s = store.stats();
        assert_eq!((s.hit, s.miss, s.corrupt_evicted), (1, 0, 0));
    }

    #[test]
    fn eviction_respects_a_held_lock() {
        let dir = TempDir::new("held-lock");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"soon damaged");
        let path = store.entry_path("cell", key(1));
        fs::write(&path, b"garbage").unwrap();
        // Someone else holds the entry lock: eviction must stand down.
        let held = acquire_lock(&lock_path(&path), 1).unwrap();
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())), None);
        assert!(path.exists(), "entry left for the lock holder");
        let s = store.stats();
        assert_eq!((s.corrupt_evicted, s.lock_contention), (0, 1));
        // Lock released: the next lookup evicts as usual.
        drop(held);
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())), None);
        assert!(!path.exists(), "evicted once the lock was free");
        assert_eq!(store.stats().corrupt_evicted, 1);
    }

    #[test]
    fn contended_put_degrades_to_skipping_the_cache() {
        let dir = TempDir::new("contended-put");
        let store = Store::open(dir.path()).unwrap();
        let path = store.entry_path("cell", key(1));
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        let held = acquire_lock(&lock_path(&path), 1).unwrap();
        store.put("cell", key(1), b"never lands");
        let s = store.stats();
        assert_eq!((s.write, s.lock_contention, s.io_errors), (0, 1, 0));
        assert!(!path.exists());
        drop(held);
        store.put("cell", key(1), b"lands now");
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())).unwrap(), b"lands now");
        assert!(!lock_path(&path).exists(), "commit released its lock");
    }

    #[test]
    fn stale_locks_are_broken_not_waited_out() {
        let dir = TempDir::new("stale-lock");
        let store = Store::open(dir.path()).unwrap();
        let path = store.entry_path("cell", key(1));
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        // A crashed writer's leavings: stamp epoch-zero, ancient.
        fs::write(lock_path(&path), b"0").unwrap();
        store.put("cell", key(1), b"payload");
        let s = store.stats();
        assert_eq!((s.write, s.lock_contention), (1, 0), "broke the stale lock and committed");
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())).unwrap(), b"payload");
        // A garbled stamp on a *fresh* file reads as fresh (mtime fallback).
        let garbled = lock_path(&store.entry_path("cell", key(2)));
        fs::create_dir_all(garbled.parent().unwrap()).unwrap();
        fs::write(&garbled, b"not a number").unwrap();
        assert!(!lock_is_stale(&garbled));
    }

    #[test]
    fn fs_errors_count_and_degrade_to_misses() {
        let dir = TempDir::new("io-errors");
        let store = Store::open(dir.path()).unwrap();
        // A directory squatting on the entry path: reads fail with
        // something other than NotFound, and the atomic rename in `put`
        // cannot replace it.
        let squatted = store.entry_path("cell", key(9));
        fs::create_dir_all(&squatted).unwrap();
        assert_eq!(store.get_with("cell", key(9), |b| Some(b.to_vec())), None);
        store.put("cell", key(9), b"doomed");
        let s = store.stats();
        assert_eq!((s.miss, s.io_errors), (1, 2));
        assert_eq!(s.write, 0, "failed commit not counted as a write");
        // The store still serves other keys.
        store.put("cell", key(10), b"fine");
        assert!(store.get_with("cell", key(10), |b| Some(b.to_vec())).is_some());
    }
}
