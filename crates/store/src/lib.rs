//! # d16-store — content-addressed artifacts for incremental runs
//!
//! Every expensive product of the experiment pipeline — compiled images,
//! per-cell [`Measurement`] rows, recorded access traces, cache-grid
//! sweeps — is a pure function of (source text, target knobs, toolchain
//! version). This crate persists those products on disk keyed by a
//! stable content hash of exactly those inputs, so a rerun recomputes
//! only what actually changed.
//!
//! Design rules, in order:
//!
//! 1. **Never serve damaged data.** Every entry is wrapped in a
//!    checksummed envelope (magic, format version, payload length,
//!    FNV-1a/64 digest). A truncated write, a flipped bit, or a
//!    foreign-format file fails the envelope check; the entry is
//!    evicted, counted in `corrupt_evicted`, and the artifact is
//!    silently recomputed. A cache can lose entries; it must not lie.
//! 2. **Atomic commit.** Writes go to a per-process temp file in the
//!    entry's directory and are published with `rename`, which replaces
//!    atomically on POSIX. Concurrent `--jobs N` workers — or two whole
//!    `repro` processes sharing one store — race only on who commits a
//!    byte-identical entry last.
//! 3. **Best-effort by construction.** A failed read is a miss; a
//!    failed write is skipped. The store can accelerate a run, never
//!    fail one: every error path degrades to recomputation.
//!
//! Keys come from [`StableHasher`] (see `key.rs`): a domain string plus
//! length-prefixed fields, hashed with FNV-1a/128. Producers include
//! their own toolchain tag in the key material, so bumping a tag when
//! codegen changes retires every stale entry at once — nothing is ever
//! mutated in place.
//!
//! [`Measurement`]: ../d16_core/measure/struct.Measurement.html

mod key;
mod wire;

pub use key::{fnv64, CacheKey, StableHasher};
pub use wire::{Reader, Writer};

use d16_telemetry::Registry;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry format version; part of every envelope. Bump on any
/// envelope-layout change so old stores read as misses, not garbage.
pub const FORMAT: u32 = 1;

/// Envelope magic: identifies a d16-store entry file.
pub const MAGIC: [u8; 4] = *b"d16s";

/// Envelope header size: magic + format + payload length + digest.
const HEADER: usize = 4 + 4 + 8 + 8;

/// Operation counters, updated atomically so concurrent workers can
/// share one [`Store`]. These are *store* telemetry, deliberately kept
/// out of the experiment registry: the `--metrics-json` dump must stay
/// byte-identical between cold and warm runs (see DESIGN.md §6), so
/// hit/miss counts only ever appear in the timing (non-diffed) half of
/// a report.
#[derive(Debug, Default)]
pub struct StoreStats {
    hit: AtomicU64,
    miss: AtomicU64,
    write: AtomicU64,
    corrupt_evicted: AtomicU64,
    io_errors: AtomicU64,
}

/// A point-in-time copy of [`StoreStats`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Entries served from disk.
    pub hit: u64,
    /// Lookups that found nothing servable (includes evictions).
    pub miss: u64,
    /// Entries committed.
    pub write: u64,
    /// Entries evicted because the envelope or payload failed to check.
    pub corrupt_evicted: u64,
    /// Lookups or commits abandoned on a filesystem error, each one
    /// degraded to recomputation (the `store-io` failpoint lands here).
    pub io_errors: u64,
}

impl StatsSnapshot {
    /// `(name, value)` pairs in [`d16_telemetry::STORE_SCHEMA`] order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 5] {
        let names = d16_telemetry::STORE_SCHEMA.names();
        [
            (names[0], self.hit),
            (names[1], self.miss),
            (names[2], self.write),
            (names[3], self.corrupt_evicted),
            (names[4], self.io_errors),
        ]
    }
}

/// What [`Store::verify`] found and did.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct VerifyReport {
    /// Entry files scanned.
    pub scanned: u64,
    /// Entries whose envelope checked out.
    pub ok: u64,
    /// Entries evicted (bad envelope; also bumps `corrupt_evicted`).
    pub evicted: u64,
    /// Abandoned commit temp files removed (a crashed writer's leavings;
    /// harmless — lookups never read them — but worth sweeping).
    pub temps_removed: u64,
}

/// A content-addressed artifact store rooted at one directory.
///
/// Layout: `root/<kind>/<first two hex digits>/<32 hex digits>.bin`,
/// one checksummed envelope per entry. The two-digit fanout keeps
/// directories small; `kind` separates artifact namespaces (`image`,
/// `cell`, `grid`, ...) for selective wiping and inspection.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    stats: StoreStats,
    seq: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root, stats: StoreStats::default(), seq: AtomicU64::new(0) })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of an entry (whether or not it exists).
    #[must_use]
    pub fn entry_path(&self, kind: &str, key: CacheKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(kind).join(&hex[..2]).join(format!("{hex}.bin"))
    }

    /// Looks up an entry and decodes it. `decode` returning `None` is
    /// treated exactly like a bad checksum: the file cannot be what the
    /// key promises, so it is evicted and the lookup is a miss.
    pub fn get_with<T>(
        &self,
        kind: &str,
        key: CacheKey,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        if d16_testkit::faults::armed_for("store-io", kind) {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            self.stats.miss.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(kind, key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(e) => {
                // An absent entry is the normal cold-store miss; any other
                // failure is an I/O error worth accounting separately.
                if e.kind() != io::ErrorKind::NotFound {
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.miss.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match unwrap_envelope(&data).and_then(decode) {
            Some(v) => {
                self.stats.hit.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                let _ = fs::remove_file(&path);
                self.stats.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                self.stats.miss.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Commits an entry: envelope, temp file, atomic rename. Best
    /// effort — on any I/O failure the entry is simply not cached (and
    /// the temp file removed if it got that far).
    pub fn put(&self, kind: &str, key: CacheKey, payload: &[u8]) {
        if d16_testkit::faults::armed_for("store-io", kind) {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let path = self.entry_path(kind, key);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tmp = dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::write(&tmp, wrap_envelope(payload)).is_err() {
            let _ = fs::remove_file(&tmp);
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.write.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the operation counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hit: self.stats.hit.load(Ordering::Relaxed),
            miss: self.stats.miss.load(Ordering::Relaxed),
            write: self.stats.write.load(Ordering::Relaxed),
            corrupt_evicted: self.stats.corrupt_evicted.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Dumps the operation counters into a registry as `store.*` (the
    /// [`d16_telemetry::STORE_SCHEMA`] names). Callers must keep this
    /// out of any cold-vs-warm diffed registry — see [`StoreStats`].
    pub fn export_telemetry(&self, reg: &mut Registry) {
        for (name, v) in self.stats().named() {
            reg.add_counter(format!("store.{name}"), v);
        }
    }

    /// Scans every entry, evicting any whose envelope fails to check
    /// and sweeping abandoned commit temp files. Lookups do the same
    /// check per entry anyway; `verify` exists to front-load it
    /// (`repro --store-verify`) and to report what a store holds.
    ///
    /// # Errors
    ///
    /// Fails only on directory-walk I/O errors, not on bad entries.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut rep = VerifyReport::default();
        let mut dirs = vec![self.root.clone()];
        while let Some(dir) = dirs.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if entry.file_type()?.is_dir() {
                    dirs.push(path);
                    continue;
                }
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.contains(".tmp.") {
                    if fs::remove_file(&path).is_ok() {
                        rep.temps_removed += 1;
                    }
                    continue;
                }
                if !name.ends_with(".bin") {
                    continue;
                }
                rep.scanned += 1;
                let ok = fs::read(&path).ok().as_deref().and_then(unwrap_envelope).is_some();
                if ok {
                    rep.ok += 1;
                } else if fs::remove_file(&path).is_ok() {
                    rep.evicted += 1;
                    self.stats.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(rep)
    }
}

/// Wraps a payload in the checksummed envelope.
#[must_use]
pub fn wrap_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Checks an envelope, returning the payload only if the magic, format
/// version, length, and digest all agree.
#[must_use]
pub fn unwrap_envelope(data: &[u8]) -> Option<&[u8]> {
    let header = data.get(..HEADER)?;
    if header[..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(header[4..8].try_into().ok()?) != FORMAT {
        return None;
    }
    let len = usize::try_from(u64::from_le_bytes(header[8..16].try_into().ok()?)).ok()?;
    let digest = u64::from_le_bytes(header[16..HEADER].try_into().ok()?);
    let payload = data.get(HEADER..)?;
    if payload.len() != len || fnv64(payload) != digest {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d16_testkit::TempDir;

    fn key(n: u64) -> CacheKey {
        let mut h = StableHasher::new("test");
        h.field_u64(n);
        h.finish()
    }

    #[test]
    fn roundtrip_hit_and_miss() {
        let dir = TempDir::new("roundtrip");
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())), None);
        store.put("cell", key(1), b"payload");
        assert_eq!(store.get_with("cell", key(1), |b| Some(b.to_vec())).unwrap(), b"payload");
        assert_eq!(store.get_with("other-kind", key(1), |b| Some(b.to_vec())), None);
        let s = store.stats();
        assert_eq!((s.hit, s.miss, s.write, s.corrupt_evicted), (1, 2, 1, 0));
    }

    #[test]
    fn decode_failure_counts_as_corruption() {
        let dir = TempDir::new("decode");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"not what the codec wants");
        assert_eq!(store.get_with("cell", key(1), |_| None::<()>), None);
        assert_eq!(store.stats().corrupt_evicted, 1);
        assert!(!store.entry_path("cell", key(1)).exists(), "evicted from disk");
    }

    #[test]
    fn envelope_rejects_each_kind_of_damage() {
        let good = wrap_envelope(b"abc");
        assert_eq!(unwrap_envelope(&good), Some(&b"abc"[..]));
        // Truncation, anywhere.
        for cut in 0..good.len() {
            assert_eq!(unwrap_envelope(&good[..cut]), None, "cut at {cut}");
        }
        // A flipped bit, anywhere.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert_eq!(unwrap_envelope(&bad), None, "flip at {i}");
        }
        // Wrong format version.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(FORMAT + 1).to_le_bytes());
        assert_eq!(unwrap_envelope(&bad), None);
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert_eq!(unwrap_envelope(&bad), None);
    }

    #[test]
    fn put_replaces_atomically_and_leaves_no_temps() {
        let dir = TempDir::new("replace");
        let store = Store::open(dir.path()).unwrap();
        store.put("image", key(2), b"v1");
        store.put("image", key(2), b"v2");
        assert_eq!(store.get_with("image", key(2), |b| Some(b.to_vec())).unwrap(), b"v2");
        let rep = store.verify().unwrap();
        assert_eq!((rep.scanned, rep.ok, rep.evicted, rep.temps_removed), (1, 1, 0, 0));
    }

    #[test]
    fn verify_evicts_corrupt_and_sweeps_temps() {
        let dir = TempDir::new("verify");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"ok");
        store.put("cell", key(2), b"damaged soon");
        let victim = store.entry_path("cell", key(2));
        let mut raw = fs::read(&victim).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&victim, raw).unwrap();
        // A crashed writer's abandoned temp file.
        let crashed = victim.with_file_name(format!("{}.tmp.999.0", key(2).hex()));
        fs::write(&crashed, b"partial").unwrap();

        let rep = store.verify().unwrap();
        assert_eq!((rep.scanned, rep.ok, rep.evicted, rep.temps_removed), (2, 1, 1, 1));
        assert!(!victim.exists());
        assert!(!crashed.exists());
        assert_eq!(store.stats().corrupt_evicted, 1);
        // The good entry still serves.
        assert!(store.get_with("cell", key(1), |b| Some(b.to_vec())).is_some());
    }

    #[test]
    fn concurrent_writers_to_one_key_are_safe() {
        let dir = TempDir::new("concurrent");
        let store = Store::open(dir.path()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        store.put("cell", key(7), b"same bytes from everyone");
                        let got = store.get_with("cell", key(7), |b| Some(b.to_vec()));
                        if let Some(b) = got {
                            assert_eq!(b, b"same bytes from everyone");
                        }
                    }
                });
            }
        });
        assert_eq!(store.stats().corrupt_evicted, 0);
        let rep = store.verify().unwrap();
        assert_eq!(rep.evicted, 0);
    }

    #[test]
    fn export_telemetry_uses_store_prefix() {
        let dir = TempDir::new("tele");
        let store = Store::open(dir.path()).unwrap();
        store.put("cell", key(1), b"x");
        store.get_with("cell", key(1), |b| Some(b.len()));
        let mut reg = Registry::new();
        store.export_telemetry(&mut reg);
        assert_eq!(reg.counter("store.hit"), Some(1));
        assert_eq!(reg.counter("store.miss"), Some(0));
        assert_eq!(reg.counter("store.write"), Some(1));
        assert_eq!(reg.counter("store.corrupt_evicted"), Some(0));
        assert_eq!(reg.counter("store.io_errors"), Some(0));
    }

    #[test]
    fn fs_errors_count_and_degrade_to_misses() {
        let dir = TempDir::new("io-errors");
        let store = Store::open(dir.path()).unwrap();
        // A directory squatting on the entry path: reads fail with
        // something other than NotFound, and the atomic rename in `put`
        // cannot replace it.
        let squatted = store.entry_path("cell", key(9));
        fs::create_dir_all(&squatted).unwrap();
        assert_eq!(store.get_with("cell", key(9), |b| Some(b.to_vec())), None);
        store.put("cell", key(9), b"doomed");
        let s = store.stats();
        assert_eq!((s.miss, s.io_errors), (1, 2));
        assert_eq!(s.write, 0, "failed commit not counted as a write");
        // The store still serves other keys.
        store.put("cell", key(10), b"fine");
        assert!(store.get_with("cell", key(10), |b| Some(b.to_vec())).is_some());
    }
}
