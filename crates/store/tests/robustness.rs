//! Store robustness: every way an on-disk entry can be damaged must
//! degrade to a clean miss — recompute, re-commit, carry on — with the
//! right counters bumped. Nothing here may panic or serve bad bytes.

use d16_store::{CacheKey, StableHasher, Store};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "d16-store-robust-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&d).unwrap();
        TestDir(d)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn key(n: u64) -> CacheKey {
    let mut h = StableHasher::new("robustness");
    h.field_u64(n);
    h.finish()
}

const PAYLOAD: &[u8] = b"a perfectly good artifact payload";

/// Decode used by every test: accepts exactly `PAYLOAD`.
fn decode(b: &[u8]) -> Option<Vec<u8>> {
    (b == PAYLOAD).then(|| b.to_vec())
}

/// Damages the committed entry file with `f`, then checks the store
/// (a) refuses to serve it, (b) counts one eviction and one miss,
/// (c) accepts a recompute-and-recommit, and (d) serves the fresh copy.
fn damaged_entry_recovers(tag: &str, f: impl FnOnce(&mut Vec<u8>)) {
    let dir = TestDir::new(tag);
    let store = Store::open(&dir.0).unwrap();
    store.put("cell", key(1), PAYLOAD);
    let path = store.entry_path("cell", key(1));
    let mut raw = fs::read(&path).unwrap();
    f(&mut raw);
    fs::write(&path, raw).unwrap();

    assert_eq!(store.get_with("cell", key(1), decode), None, "{tag}: must not serve");
    let s = store.stats();
    assert_eq!(s.corrupt_evicted, 1, "{tag}: eviction counted");
    assert_eq!(s.miss, 1, "{tag}: miss counted");
    assert!(!path.exists(), "{tag}: damaged entry evicted from disk");

    // The caller recomputes and re-commits; the store serves it again.
    store.put("cell", key(1), PAYLOAD);
    assert_eq!(store.get_with("cell", key(1), decode).unwrap(), PAYLOAD, "{tag}: recovered");
    let s = store.stats();
    assert_eq!((s.hit, s.corrupt_evicted), (1, 1), "{tag}: clean after recovery");
}

#[test]
fn truncated_envelope_recomputes() {
    damaged_entry_recovers("truncate", |raw| {
        raw.truncate(raw.len() / 2);
    });
}

#[test]
fn truncated_to_zero_bytes_recomputes() {
    // The limit case of a crash during the temp write that somehow got
    // renamed: an empty file under the final name.
    damaged_entry_recovers("empty", |raw| raw.clear());
}

#[test]
fn bit_flipped_payload_recomputes() {
    damaged_entry_recovers("bitflip", |raw| {
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
    });
}

#[test]
fn bit_flipped_header_recomputes() {
    damaged_entry_recovers("bitflip-header", |raw| {
        raw[9] ^= 0x80; // inside the length field
    });
}

#[test]
fn wrong_version_tag_recomputes() {
    damaged_entry_recovers("version", |raw| {
        raw[4..8].copy_from_slice(&(d16_store::FORMAT + 7).to_le_bytes());
    });
}

#[test]
fn wrong_magic_recomputes() {
    damaged_entry_recovers("magic", |raw| {
        raw[..4].copy_from_slice(b"NOPE");
    });
}

#[test]
fn crash_mid_commit_is_a_plain_miss() {
    // Simulated crash between the temp write and the rename: the temp
    // file exists, the final name does not. A lookup must see a plain
    // miss (nothing corrupt was *published*), a recompute must commit
    // fine alongside the stale temp, and verify must sweep the temp.
    let dir = TestDir::new("crash");
    let store = Store::open(&dir.0).unwrap();
    let path = store.entry_path("cell", key(1));
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    let tmp = path.with_file_name(format!("{}.tmp.4242.0", key(1).hex()));
    fs::write(&tmp, &d16_store::wrap_envelope(PAYLOAD)[..10]).unwrap();

    assert_eq!(store.get_with("cell", key(1), decode), None);
    let s = store.stats();
    assert_eq!((s.miss, s.corrupt_evicted), (1, 0), "unpublished temp is a miss, not corruption");

    store.put("cell", key(1), PAYLOAD);
    assert_eq!(store.get_with("cell", key(1), decode).unwrap(), PAYLOAD);
    assert!(tmp.exists(), "lookups and commits ignore the stale temp");

    let rep = store.verify().unwrap();
    assert_eq!(rep.temps_removed, 1);
    assert_eq!(rep.evicted, 0);
    assert!(!tmp.exists(), "verify swept the crash leavings");
    assert!(path.exists(), "the committed entry survived verify");
}

#[test]
fn unreadable_store_directory_degrades_to_misses() {
    // A store whose directory tree vanished underneath it: every get is
    // a miss, every put a no-op, nothing panics.
    let dir = TestDir::new("vanish");
    let store = Store::open(dir.0.join("sub")).unwrap();
    fs::remove_dir_all(&dir.0).unwrap();
    assert_eq!(store.get_with("cell", key(1), decode), None);
    assert_eq!(store.stats().miss, 1);
}
