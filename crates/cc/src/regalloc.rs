//! Graph-coloring register allocation (Chaitin–Briggs style), per the
//! paper's compiler technology: "the problem of optimally allocating
//! registers by a compiler is NP-complete, but heuristic solutions with
//! very good behavior exist \[CAC+81\]".
//!
//! Integer registers and FP pairs are colored independently. Values live
//! across calls interfere with every caller-saved register and therefore
//! land in callee-saved registers — or spill, which is exactly the
//! register-file-size effect the paper measures (§3.3.1). Spills go to
//! stack-frame slots, "extremely likely to hit in a data cache".

use crate::mach::{MFunc, MInsn, MTerm, MemAddr, FR, R};
use crate::target::TargetSpec;
use d16_isa::{Fpr, Gpr, MemWidth, Prec, UnOp};
use std::collections::{HashMap, HashSet};

/// Register allocation failed to converge for one function: after the
/// round limit, spilling still left an uncolorable interference graph.
/// Reachable only with a register class narrower than a single
/// instruction needs (or under the `regalloc-diverge` failpoint), but a
/// compiler bug of that shape must surface as a reported build failure,
/// not a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegAllocError {
    /// The function being allocated.
    pub func: String,
    /// The register class that failed (`"integer"` or `"FP"`).
    pub class: &'static str,
    /// How many spill-and-retry rounds ran before giving up.
    pub rounds: u32,
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} register allocation did not converge for `{}` after {} rounds",
            self.class, self.func, self.rounds
        )
    }
}

impl std::error::Error for RegAllocError {}

/// Spill-and-retry rounds before allocation gives up.
const MAX_ROUNDS: u32 = 16;

/// Which callee-saved registers the allocation used (the prologue must
/// save them).
#[derive(Clone, Debug, Default)]
pub struct AllocInfo {
    /// Callee-saved GPRs written by the function.
    pub used_callee: Vec<Gpr>,
    /// Callee-saved FP pairs written by the function.
    pub used_fp_callee: Vec<Fpr>,
    /// Spilled integer virtuals (statistics).
    pub int_spills: u32,
    /// Spilled FP virtuals (statistics).
    pub fp_spills: u32,
}

/// Allocates registers in place.
///
/// # Errors
///
/// Returns [`RegAllocError`] if allocation cannot converge (would
/// indicate a register class with fewer physical registers than a single
/// instruction needs).
pub fn allocate(mf: &mut MFunc, spec: &TargetSpec) -> Result<AllocInfo, RegAllocError> {
    if d16_testkit::faults::armed_for("regalloc-diverge", &mf.name) {
        return Err(RegAllocError { func: mf.name.clone(), class: "integer", rounds: MAX_ROUNDS });
    }
    let mut info = AllocInfo::default();
    // FP first: FP spill code introduces integer temporaries.
    info.fp_spills = allocate_fp(mf, spec, &mut info)?;
    info.int_spills = allocate_int(mf, spec, &mut info)?;
    Ok(info)
}

// ---------------------------------------------------------------------------
// Integer allocation
// ---------------------------------------------------------------------------

fn int_ids(mf: &MFunc) -> usize {
    mf.nvirt_int as usize
}

fn r_id(r: R) -> Option<usize> {
    match r {
        R::V(v) => Some(v as usize),
        R::P(_) => None,
    }
}

fn allocate_int(
    mf: &mut MFunc,
    spec: &TargetSpec,
    info: &mut AllocInfo,
) -> Result<u32, RegAllocError> {
    let caller = spec.caller_saved();
    let fp_caller = spec.fp_caller_saved();
    let allocatable = spec.int_regs();
    let alloc_mask: u32 = allocatable.iter().map(|r| 1u32 << r.number()).sum();
    let callee: HashSet<Gpr> = spec.callee_saved().into_iter().collect();
    let k = allocatable.len();
    let mut total_spills = 0u32;

    for _round in 0..MAX_ROUNDS {
        let nv = int_ids(mf);
        if std::env::var_os("D16CC_DEBUG").is_some() {
            eprintln!("[regalloc int] {} round {} nv={}", mf.name, _round, nv);
        }
        // ---- liveness ----
        let nb = mf.blocks.len();
        let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        loop {
            let mut changed = false;
            for bi in (0..nb).rev() {
                let mut out: HashSet<u32> = HashSet::new();
                for s in mf.blocks[bi].term.succs() {
                    out.extend(live_in[s as usize].iter().copied());
                }
                let mut live = out.clone();
                term_uses_int(&mf.blocks[bi].term, mf, |v| {
                    live.insert(v);
                });
                for inst in mf.blocks[bi].insts.iter().rev() {
                    let du = inst.def_use(&caller, &fp_caller);
                    for d in &du.idefs {
                        if let Some(v) = r_id(*d) {
                            live.remove(&(v as u32));
                        }
                    }
                    for u in &du.iuses {
                        if let Some(v) = r_id(*u) {
                            live.insert(v as u32);
                        }
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // ---- interference ----
        let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); nv];
        let mut phys_conflicts: Vec<u32> = vec![0; nv]; // bitmask of gpr numbers
        let mut use_counts: Vec<u32> = vec![0; nv];
        let add_edge = |adj: &mut Vec<HashSet<u32>>, a: u32, b: u32| {
            if a != b {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        };
        for (block, lo) in mf.blocks.iter().zip(&live_out) {
            let mut live: HashSet<u32> = lo.clone();
            let mut live_phys: u32 = term_phys_uses(&block.term, mf);
            term_uses_int(&block.term, mf, |v| {
                live.insert(v);
            });
            // Track phys liveness for the few physical uses at terms: none
            // besides allocatable argument registers near calls; handled
            // inside the instruction walk below.
            for inst in block.insts.iter().rev() {
                let du = inst.def_use(&caller, &fp_caller);
                // A move's source does not interfere with its destination.
                let move_pair = match inst {
                    MInsn::Un { op: UnOp::Mv, rd, rs } => Some((*rd, *rs)),
                    _ => None,
                };
                for d in &du.idefs {
                    match d {
                        R::V(dv) => {
                            use_counts[*dv as usize] += 1;
                            for l in &live {
                                if let Some((R::V(md), R::V(ms))) = move_pair {
                                    if *dv == md && *l == ms {
                                        continue;
                                    }
                                }
                                add_edge(&mut adj, *dv, *l);
                            }
                            phys_conflicts[*dv as usize] |= live_phys;
                        }
                        R::P(p) => {
                            for l in &live {
                                phys_conflicts[*l as usize] |= 1 << p.number();
                            }
                        }
                    }
                }
                for d in &du.idefs {
                    match d {
                        R::V(v) => {
                            live.remove(v);
                        }
                        R::P(p) => {
                            live_phys &= !(1 << p.number());
                        }
                    }
                }
                for u in &du.iuses {
                    match u {
                        R::V(v) => {
                            use_counts[*v as usize] += 1;
                            live.insert(*v);
                        }
                        R::P(p) => {
                            live_phys |= 1 << p.number();
                            // A live phys at this point conflicts with any
                            // virt defined earlier while it is live; handled
                            // when defs are processed above.
                        }
                    }
                }
            }
        }

        // ---- simplify / select ----
        let mut removed = vec![false; nv];
        let mut stack: Vec<u32> = Vec::new();
        let mut deg: Vec<usize> = (0..nv)
            .map(|v| adj[v].len() + (phys_conflicts[v] & alloc_mask).count_ones() as usize)
            .collect();
        let mut remaining = nv;
        while remaining > 0 {
            let pick = (0..nv).filter(|v| !removed[*v]).min_by_key(|v| {
                let low = deg[*v] < k;
                // Prefer trivially colorable; otherwise lowest
                // spill-priority (uses / degree).
                (
                    !low as u32,
                    if low { 0 } else { (use_counts[*v] as u64 * 1000) / (deg[*v] as u64 + 1) },
                )
            });
            let v = match pick {
                Some(v) => v,
                None => break,
            };
            removed[v] = true;
            remaining -= 1;
            stack.push(v as u32);
            for n in &adj[v] {
                if !removed[*n as usize] {
                    deg[*n as usize] = deg[*n as usize].saturating_sub(1);
                }
            }
        }

        let mut color: Vec<Option<Gpr>> = vec![None; nv];
        let mut spilled: Vec<u32> = Vec::new();
        while let Some(v) = stack.pop() {
            let v = v as usize;
            let mut forbidden: u32 = phys_conflicts[v];
            for n in &adj[v] {
                if let Some(c) = color[*n as usize] {
                    forbidden |= 1 << c.number();
                }
            }
            match allocatable.iter().find(|r| forbidden & (1 << r.number()) == 0) {
                Some(r) => color[v] = Some(*r),
                None => spilled.push(v as u32),
            }
        }

        if spilled.is_empty() {
            // Rewrite and collect callee-saved usage.
            rewrite_int(mf, &color);
            let mut used: HashSet<Gpr> = HashSet::new();
            for c in color.into_iter().flatten() {
                if callee.contains(&c) {
                    used.insert(c);
                }
            }
            let mut used: Vec<Gpr> = used.into_iter().collect();
            used.sort();
            for u in used {
                if !info.used_callee.contains(&u) {
                    info.used_callee.push(u);
                }
            }
            return Ok(total_spills);
        }
        total_spills += spilled.len() as u32;
        spill_int(mf, &spilled);
    }
    Err(RegAllocError { func: mf.name.clone(), class: "integer", rounds: MAX_ROUNDS })
}

fn term_uses_int(term: &MTerm, _mf: &MFunc, mut f: impl FnMut(u32)) {
    if let MTerm::Bc { rs: R::V(v), .. } = term {
        f(*v);
    }
}

/// Physical registers read by a terminator (the return-value registers at
/// `Ret`), as a bitmask over GPR numbers.
fn term_phys_uses(term: &MTerm, mf: &MFunc) -> u32 {
    match term {
        MTerm::Ret => match mf.ret_words {
            0 => 0,
            1 => 1 << 2,
            _ => (1 << 2) | (1 << 3),
        },
        _ => 0,
    }
}

fn rewrite_int(mf: &mut MFunc, color: &[Option<Gpr>]) {
    let map = |r: &mut R| {
        if let R::V(v) = r {
            let c = color[*v as usize].expect("colored");
            *r = R::P(c);
        }
    };
    for b in &mut mf.blocks {
        for i in &mut b.insts {
            visit_int_regs(i, map);
        }
        if let MTerm::Bc { rs, .. } = &mut b.term {
            map(rs);
        }
    }
}

fn visit_int_regs(i: &mut MInsn, mut f: impl FnMut(&mut R)) {
    match i {
        MInsn::Alu { rd, rs1, rs2, .. } | MInsn::Cmp { rd, rs1, rs2, .. } => {
            f(rd);
            f(rs1);
            f(rs2);
        }
        MInsn::AluI { rd, rs1, .. } | MInsn::CmpI { rd, rs1, .. } => {
            f(rd);
            f(rs1);
        }
        MInsn::Un { rd, rs, .. } => {
            f(rd);
            f(rs);
        }
        MInsn::Mvi { rd, .. }
        | MInsn::Lui { rd, .. }
        | MInsn::LoadConst { rd, .. }
        | MInsn::LoadSym { rd, .. }
        | MInsn::Rdsr { rd }
        | MInsn::SpAddr { rd, .. } => f(rd),
        MInsn::Ld { rd, addr, .. } => {
            f(rd);
            if let MemAddr::BaseDisp { base, .. } = addr {
                f(base);
            }
        }
        MInsn::St { rs, addr, .. } => {
            f(rs);
            if let MemAddr::BaseDisp { base, .. } = addr {
                f(base);
            }
        }
        MInsn::Mtf { rs, .. } => f(rs),
        MInsn::Mff { rd, .. } => f(rd),
        MInsn::Call { uses, .. } => uses.iter_mut().for_each(f),
        _ => {}
    }
}

fn spill_int(mf: &mut MFunc, spilled: &[u32]) {
    let mut slots: HashMap<u32, crate::ir::SlotId> = HashMap::new();
    for v in spilled {
        slots.insert(*v, mf.spill_slot(4));
    }
    let nb = mf.blocks.len();
    for bi in 0..nb {
        let insts = std::mem::take(&mut mf.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() + 8);
        for mut inst in insts {
            // Reload spilled uses into fresh temporaries.
            let mut reload_map: HashMap<u32, R> = HashMap::new();
            let du = inst.def_use(&[], &[]);
            for u in &du.iuses {
                if let R::V(v) = u {
                    if slots.contains_key(v) && !reload_map.contains_key(v) {
                        let t = mf.vint();
                        reload_map.insert(*v, t);
                        out.push(MInsn::Ld {
                            w: MemWidth::W,
                            rd: t,
                            addr: MemAddr::SpSlot { slot: slots[v], extra: 0 },
                        });
                    }
                }
            }
            // Rewrite uses (defs handled after).
            let def_v: Vec<u32> = du
                .idefs
                .iter()
                .filter_map(|d| match d {
                    R::V(v) if slots.contains_key(v) => Some(*v),
                    _ => None,
                })
                .collect();
            let mut def_temp: HashMap<u32, R> = HashMap::new();
            for v in &def_v {
                let t = *reload_map.entry(*v).or_insert_with(|| mf.vint());
                def_temp.insert(*v, t);
            }
            visit_int_regs(&mut inst, |r| {
                if let R::V(v) = r {
                    if let Some(t) = reload_map.get(v) {
                        *r = *t;
                    }
                }
            });
            out.push(inst);
            for v in def_v {
                out.push(MInsn::St {
                    w: MemWidth::W,
                    rs: def_temp[&v],
                    addr: MemAddr::SpSlot { slot: slots[&v], extra: 0 },
                });
            }
        }
        // Terminator use.
        if let MTerm::Bc { rs, .. } = &mut mf.blocks[bi].term {
            if let R::V(v) = rs {
                if let Some(slot) = slots.get(v) {
                    let t = mf.nvirt_int;
                    mf.nvirt_int += 1;
                    out.push(MInsn::Ld {
                        w: MemWidth::W,
                        rd: R::V(t),
                        addr: MemAddr::SpSlot { slot: *slot, extra: 0 },
                    });
                    *rs = R::V(t);
                }
            }
        }
        mf.blocks[bi].insts = out;
    }
}

// ---------------------------------------------------------------------------
// FP allocation (pair units)
// ---------------------------------------------------------------------------

fn allocate_fp(
    mf: &mut MFunc,
    spec: &TargetSpec,
    info: &mut AllocInfo,
) -> Result<u32, RegAllocError> {
    if mf.nvirt_fp == 0 {
        return Ok(0);
    }
    let caller = spec.caller_saved();
    let fp_caller = spec.fp_caller_saved();
    let allocatable = spec.fp_pairs();
    let alloc_mask: u32 = allocatable.iter().map(|r| 1u32 << (r.number() / 2)).sum();
    let callee: HashSet<Fpr> = spec.fp_callee_saved().into_iter().collect();
    let k = allocatable.len();
    let mut total_spills = 0u32;

    for _round in 0..MAX_ROUNDS {
        let nv = mf.nvirt_fp as usize;
        if std::env::var_os("D16CC_DEBUG").is_some() {
            eprintln!("[regalloc fp] {} round {} nv={}", mf.name, _round, nv);
        }
        let nb = mf.blocks.len();
        let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        loop {
            let mut changed = false;
            for bi in (0..nb).rev() {
                let mut out: HashSet<u32> = HashSet::new();
                for s in mf.blocks[bi].term.succs() {
                    out.extend(live_in[s as usize].iter().copied());
                }
                let mut live = out.clone();
                for inst in mf.blocks[bi].insts.iter().rev() {
                    let du = inst.def_use(&caller, &fp_caller);
                    for d in &du.fdefs {
                        if let FR::V(v) = d {
                            live.remove(v);
                        }
                    }
                    for u in &du.fuses {
                        if let FR::V(v) = u {
                            live.insert(*v);
                        }
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); nv];
        let mut phys_conflicts: Vec<u32> = vec![0; nv]; // bit = pair index
        let mut use_counts: Vec<u32> = vec![0; nv];
        for (block, lo) in mf.blocks.iter().zip(&live_out) {
            let mut live: HashSet<u32> = lo.clone();
            let mut live_phys: u32 = 0;
            for inst in block.insts.iter().rev() {
                let du = inst.def_use(&caller, &fp_caller);
                let move_pair = match inst {
                    MInsn::FMov { fd, fs, .. } => Some((*fd, *fs)),
                    _ => None,
                };
                for d in &du.fdefs {
                    match d {
                        FR::V(dv) => {
                            use_counts[*dv as usize] += 1;
                            for l in &live {
                                if let Some((FR::V(md), FR::V(ms))) = move_pair {
                                    if *dv == md && *l == ms {
                                        continue;
                                    }
                                }
                                if *l != *dv {
                                    adj[*dv as usize].insert(*l);
                                    adj[*l as usize].insert(*dv);
                                }
                            }
                            phys_conflicts[*dv as usize] |= live_phys;
                        }
                        FR::P(p) => {
                            for l in &live {
                                phys_conflicts[*l as usize] |= 1 << (p.number() / 2);
                            }
                        }
                    }
                }
                for d in &du.fdefs {
                    match d {
                        FR::V(v) => {
                            live.remove(v);
                        }
                        FR::P(p) => live_phys &= !(1 << (p.number() / 2)),
                    }
                }
                for u in &du.fuses {
                    match u {
                        FR::V(v) => {
                            use_counts[*v as usize] += 1;
                            live.insert(*v);
                        }
                        FR::P(p) => live_phys |= 1 << (p.number() / 2),
                    }
                }
            }
        }

        let mut removed = vec![false; nv];
        let mut stack: Vec<u32> = Vec::new();
        let mut deg: Vec<usize> = (0..nv)
            .map(|v| adj[v].len() + (phys_conflicts[v] & alloc_mask).count_ones() as usize)
            .collect();
        let mut remaining = nv;
        while remaining > 0 {
            let pick = (0..nv).filter(|v| !removed[*v]).min_by_key(|v| {
                let low = deg[*v] < k;
                (
                    !low as u32,
                    if low { 0 } else { (use_counts[*v] as u64 * 1000) / (deg[*v] as u64 + 1) },
                )
            });
            let v = match pick {
                Some(v) => v,
                None => break,
            };
            removed[v] = true;
            remaining -= 1;
            stack.push(v as u32);
            for n in &adj[v] {
                if !removed[*n as usize] {
                    deg[*n as usize] = deg[*n as usize].saturating_sub(1);
                }
            }
        }

        let mut color: Vec<Option<Fpr>> = vec![None; nv];
        let mut spilled: Vec<u32> = Vec::new();
        while let Some(v) = stack.pop() {
            let v = v as usize;
            let mut forbidden: u32 = phys_conflicts[v];
            for n in &adj[v] {
                if let Some(c) = color[*n as usize] {
                    forbidden |= 1 << (c.number() / 2);
                }
            }
            match allocatable.iter().find(|r| forbidden & (1 << (r.number() / 2)) == 0) {
                Some(r) => color[v] = Some(*r),
                None => spilled.push(v as u32),
            }
        }

        if spilled.is_empty() {
            rewrite_fp(mf, &color);
            let mut used: Vec<Fpr> = color
                .into_iter()
                .flatten()
                .filter(|c| callee.contains(c))
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            used.sort();
            for u in used {
                if !info.used_fp_callee.contains(&u) {
                    info.used_fp_callee.push(u);
                }
            }
            return Ok(total_spills);
        }
        total_spills += spilled.len() as u32;
        spill_fp(mf, &spilled);
    }
    Err(RegAllocError { func: mf.name.clone(), class: "FP", rounds: MAX_ROUNDS })
}

fn rewrite_fp(mf: &mut MFunc, color: &[Option<Fpr>]) {
    let map = |r: &mut FR| {
        if let FR::V(v) = r {
            *r = FR::P(color[*v as usize].expect("colored"));
        }
    };
    for b in &mut mf.blocks {
        for i in &mut b.insts {
            visit_fp_regs(i, map);
        }
    }
}

fn visit_fp_regs(i: &mut MInsn, mut f: impl FnMut(&mut FR)) {
    match i {
        MInsn::FAlu { fd, fs1, fs2, .. } => {
            f(fd);
            f(fs1);
            f(fs2);
        }
        MInsn::FNeg { fd, fs, .. } | MInsn::FCvt { fd, fs, .. } | MInsn::FMov { fd, fs, .. } => {
            f(fd);
            f(fs);
        }
        MInsn::FCmp { fs1, fs2, .. } => {
            f(fs1);
            f(fs2);
        }
        MInsn::Mtf { fd, .. } => f(fd),
        MInsn::Mff { fs, .. } => f(fs),
        _ => {}
    }
}

fn spill_fp(mf: &mut MFunc, spilled: &[u32]) {
    let mut slots: HashMap<u32, (crate::ir::SlotId, Prec)> = HashMap::new();
    for v in spilled {
        let prec = mf.fp_prec[*v as usize];
        let size = if prec == Prec::D { 8 } else { 4 };
        slots.insert(*v, (mf.spill_slot(size), prec));
    }
    let nb = mf.blocks.len();
    for bi in 0..nb {
        let insts = std::mem::take(&mut mf.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() + 8);
        for mut inst in insts {
            let du = inst.def_use(&[], &[]);
            let mut temp_map: HashMap<u32, FR> = HashMap::new();
            // Reload uses.
            for u in &du.fuses {
                if let FR::V(v) = u {
                    if let Some((slot, prec)) = slots.get(v) {
                        let prec = *prec;
                        let t = *temp_map.entry(*v).or_insert_with(|| mf.vfp(prec));
                        emit_fp_reload(&mut out, mf, t, *slot, prec);
                    }
                }
            }
            let def_v: Vec<u32> = du
                .fdefs
                .iter()
                .filter_map(|d| match d {
                    FR::V(v) if slots.contains_key(v) => Some(*v),
                    _ => None,
                })
                .collect();
            for v in &def_v {
                let prec = slots[v].1;
                temp_map.entry(*v).or_insert_with(|| mf.vfp(prec));
            }
            visit_fp_regs(&mut inst, |r| {
                if let FR::V(v) = r {
                    if let Some(t) = temp_map.get(v) {
                        *r = *t;
                    }
                }
            });
            out.push(inst);
            for v in def_v {
                let (slot, prec) = slots[&v];
                emit_fp_store(&mut out, mf, temp_map[&v], slot, prec);
            }
        }
        mf.blocks[bi].insts = out;
    }
}

fn emit_fp_reload(
    out: &mut Vec<MInsn>,
    mf: &mut MFunc,
    t: FR,
    slot: crate::ir::SlotId,
    prec: Prec,
) {
    let t1 = mf.vint();
    out.push(MInsn::Ld { w: MemWidth::W, rd: t1, addr: MemAddr::SpSlot { slot, extra: 0 } });
    if prec == Prec::D {
        let t2 = mf.vint();
        out.push(MInsn::Ld { w: MemWidth::W, rd: t2, addr: MemAddr::SpSlot { slot, extra: 4 } });
        out.push(MInsn::Mtf { fd: t, hi: false, rs: t1 });
        out.push(MInsn::Mtf { fd: t, hi: true, rs: t2 });
    } else {
        out.push(MInsn::Mtf { fd: t, hi: false, rs: t1 });
    }
}

fn emit_fp_store(out: &mut Vec<MInsn>, mf: &mut MFunc, t: FR, slot: crate::ir::SlotId, prec: Prec) {
    let t1 = mf.vint();
    out.push(MInsn::Mff { rd: t1, fs: t, hi: false });
    out.push(MInsn::St { w: MemWidth::W, rs: t1, addr: MemAddr::SpSlot { slot, extra: 0 } });
    if prec == Prec::D {
        let t2 = mf.vint();
        out.push(MInsn::Mff { rd: t2, fs: t, hi: true });
        out.push(MInsn::St { w: MemWidth::W, rs: t2, addr: MemAddr::SpSlot { slot, extra: 4 } });
    }
}
