//! Lowering: typed AST → IR.
//!
//! Performs type checking, usual arithmetic conversions, lvalue/rvalue
//! discipline, short-circuit control flow, and global-initializer constant
//! evaluation. Scalar locals whose address is never taken live in virtual
//! registers; arrays, structs, and addressed scalars get stack slots.

use crate::ast::{Expr, Func, Init, Program, Stmt, Ty, E};
use crate::ir::{
    Base, BinOp, Block, BlockId, Class, CvtKind, DataChunk, DataItem, FBinOp, Inst, IrFunc, Module,
    Operand, SlotId, Term, VReg,
};
use crate::token::CError;
use d16_isa::{Cond, FpCond, MemWidth};
use std::collections::{HashMap, HashSet};

/// The assembly symbol for a user identifier.
///
/// GPR-shaped names (`r0`..`r15`/`r31`) collide with the register operand
/// of the assembler's `j`/`jal`/`jd`: `jal r15` is an indirect jump
/// through the register, never a call to a label named `r15`. A C function
/// with such a name would silently call through whatever the register
/// holds. Suffix those identifiers with `$` — valid in assembly symbols,
/// impossible in C identifiers — so emitted symbols are never ambiguous.
/// Every IR name (functions, call targets, globals, symbol references)
/// passes through here, so definitions and uses stay consistent.
fn asm_symbol(name: &str) -> String {
    let gpr_shaped = name
        .strip_prefix('r')
        .and_then(|d| d.parse::<u8>().ok())
        .is_some_and(|n| d16_isa::Gpr::try_new(n).is_some());
    if gpr_shaped {
        format!("{name}$")
    } else {
        name.to_string()
    }
}

/// Lowers a checked program to an IR module.
///
/// # Errors
///
/// Reports type errors, undefined names, and unsupported constructs with
/// their source lines.
pub fn lower(prog: &Program) -> Result<Module, CError> {
    let mut lw = Lower {
        prog,
        module: Module::default(),
        strings: HashMap::new(),
        next_anon: 0,
        globals: HashMap::new(),
        sigs: HashMap::new(),
    };
    for g in &prog.globals {
        lw.globals.insert(g.name.clone(), g.ty.clone());
    }
    for f in &prog.funcs {
        lw.sigs.insert(
            f.name.clone(),
            (f.ret.clone(), f.params.iter().map(|(_, t)| t.clone()).collect()),
        );
    }
    // Globals first, in declaration order (gp-window layout);
    // uninitialized globals become bss and occupy no binary bytes.
    for g in &prog.globals {
        if g.init.is_none() {
            let size = g.ty.size(&prog.structs).max(1);
            lw.module.bss.push(crate::ir::BssItem { name: asm_symbol(&g.name), size });
        } else {
            let item = lw.lower_global(g)?;
            lw.module.data.push(item);
        }
    }
    for f in &prog.funcs {
        let func = FnLower::run(&mut lw, f)?;
        lw.module.funcs.push(func);
    }
    Ok(lw.module)
}

struct Lower<'a> {
    prog: &'a Program,
    module: Module,
    strings: HashMap<Vec<u8>, String>,
    next_anon: u32,
    globals: HashMap<String, Ty>,
    sigs: HashMap<String, (Ty, Vec<Ty>)>,
}

fn err(line: usize, msg: impl Into<String>) -> CError {
    CError { line, msg: msg.into() }
}

fn class_of(ty: &Ty) -> Class {
    match ty {
        Ty::Float => Class::F32,
        Ty::Double => Class::F64,
        _ => Class::Int,
    }
}

fn width_of(ty: &Ty) -> MemWidth {
    match ty {
        Ty::Char => MemWidth::B,
        _ => MemWidth::W, // F64-class loads/stores move 8 bytes (see ir.rs)
    }
}

impl<'a> Lower<'a> {
    fn intern_string(&mut self, s: &[u8]) -> String {
        if let Some(name) = self.strings.get(s) {
            return name.clone();
        }
        let name = format!("$str{}", self.next_anon);
        self.next_anon += 1;
        let mut bytes = s.to_vec();
        bytes.push(0);
        self.module.data.push(DataItem {
            name: name.clone(),
            align: 1,
            chunks: vec![DataChunk::Bytes(bytes)],
        });
        self.strings.insert(s.to_vec(), name.clone());
        name
    }

    fn lower_global(&mut self, g: &crate::ast::Global) -> Result<DataItem, CError> {
        let structs = &self.prog.structs;
        let align = g.ty.align(structs).max(if g.ty.size(structs) >= 4 { 4 } else { 1 });
        let mut chunks = Vec::new();
        match &g.init {
            None => chunks.push(DataChunk::Zero(g.ty.size(structs))),
            Some(init) => self.const_init(&g.ty, init, g.line, &mut chunks)?,
        }
        Ok(DataItem { name: asm_symbol(&g.name), align, chunks })
    }

    /// Emits constant-initializer chunks for a value of type `ty`.
    fn const_init(
        &mut self,
        ty: &Ty,
        init: &Init,
        line: usize,
        out: &mut Vec<DataChunk>,
    ) -> Result<(), CError> {
        let structs: Vec<_> = self.prog.structs.to_vec();
        match (ty, init) {
            (Ty::Array(elem, n), Init::List(items)) => {
                if items.len() > *n as usize {
                    return Err(err(line, "too many initializers"));
                }
                for item in items {
                    self.const_init(elem, item, line, out)?;
                }
                let left = (*n as usize - items.len()) as u32 * elem.size(&structs);
                if left > 0 {
                    out.push(DataChunk::Zero(left));
                }
                Ok(())
            }
            (Ty::Array(elem, n), Init::Expr(e)) => {
                // `char s[N] = "..."`.
                if let (Ty::Char, Expr::Str(s)) = (elem.as_ref(), &e.kind) {
                    if s.len() + 1 > *n as usize {
                        return Err(err(line, "string too long for array"));
                    }
                    let mut bytes = s.clone();
                    bytes.push(0);
                    let pad = *n - bytes.len() as u32;
                    out.push(DataChunk::Bytes(bytes));
                    if pad > 0 {
                        out.push(DataChunk::Zero(pad));
                    }
                    Ok(())
                } else {
                    Err(err(line, "array initializer must be a brace list"))
                }
            }
            (Ty::Struct(si), Init::List(items)) => {
                let def = self.prog.structs[*si].clone();
                if items.len() > def.fields.len() {
                    return Err(err(line, "too many initializers"));
                }
                let mut pos = 0u32;
                for (item, (_, fty, foff)) in items.iter().zip(&def.fields) {
                    if *foff > pos {
                        out.push(DataChunk::Zero(*foff - pos));
                    }
                    self.const_init(fty, item, line, out)?;
                    pos = *foff + fty.size(&structs);
                }
                if def.size > pos {
                    out.push(DataChunk::Zero(def.size - pos));
                }
                Ok(())
            }
            (_, Init::Expr(e)) => {
                let chunk = self.const_scalar(ty, e)?;
                out.push(chunk);
                Ok(())
            }
            (_, Init::List(items)) => {
                // `int x = {5};` — tolerate a singleton brace.
                if items.len() == 1 {
                    self.const_init(ty, &items[0], line, out)
                } else {
                    Err(err(line, "brace list for a scalar"))
                }
            }
        }
    }

    fn const_scalar(&mut self, ty: &Ty, e: &E) -> Result<DataChunk, CError> {
        match ty {
            Ty::Char => {
                let v = self.const_int(e)?;
                Ok(DataChunk::Bytes(vec![v as u8]))
            }
            Ty::Int | Ty::Uint => Ok(DataChunk::Word(self.const_int(e)? as u32)),
            Ty::Float => {
                let v = self.const_num(e)?;
                Ok(DataChunk::Word((v as f32).to_bits()))
            }
            Ty::Double => {
                let bits = self.const_num(e)?.to_bits();
                Ok(DataChunk::Bytes(bits.to_le_bytes().to_vec()))
            }
            Ty::Ptr(_) => match &e.kind {
                Expr::Int(0) => Ok(DataChunk::Word(0)),
                Expr::Str(s) => {
                    let label = self.intern_string(s);
                    Ok(DataChunk::WordSym(label, 0))
                }
                Expr::Ident(name) if self.globals.contains_key(name) => {
                    Ok(DataChunk::WordSym(asm_symbol(name), 0))
                }
                Expr::Unary("&", inner) => match &inner.kind {
                    Expr::Ident(name) if self.globals.contains_key(name) => {
                        Ok(DataChunk::WordSym(asm_symbol(name), 0))
                    }
                    _ => Err(err(e.line, "unsupported constant address")),
                },
                _ => Err(err(e.line, "unsupported pointer initializer")),
            },
            _ => Err(err(e.line, "unsupported initializer type")),
        }
    }

    /// Folds a constant initializer expression with the machine's 32-bit
    /// semantics ([`d16_isa::sem`]): shift counts masked to five bits,
    /// division by zero yielding zero, signed overflow wrapping. A bare
    /// literal passes through unwrapped (it may name a `u32` bit pattern),
    /// but every operator truncates its operands to i32 and sign-extends
    /// its result, so a folded initializer holds exactly the bits the same
    /// expression would compute at run time.
    fn const_int(&self, e: &E) -> Result<i64, CError> {
        use d16_isa::sem;
        match &e.kind {
            Expr::Int(v) => Ok(*v),
            Expr::Unary("-", inner) => Ok(sem::sub(0, self.const_int(inner)? as i32) as i64),
            Expr::Unary("~", inner) => Ok(!(self.const_int(inner)? as i32) as i64),
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.const_int(a)? as i32, self.const_int(b)? as i32);
                Ok(match *op {
                    "+" => sem::add(a, b),
                    "-" => sem::sub(a, b),
                    "*" => sem::mul(a, b),
                    "/" => sem::div(a, b),
                    "%" => sem::rem(a, b),
                    "<<" => sem::shl(a, b),
                    ">>" => sem::sar(a, b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    _ => return Err(err(e.line, "not a constant expression")),
                } as i64)
            }
            Expr::SizeofTy(t) => Ok(t.size(&self.prog.structs) as i64),
            Expr::Cast(_, inner) => self.const_int(inner),
            _ => Err(err(e.line, "not a constant expression")),
        }
    }

    fn const_num(&self, e: &E) -> Result<f64, CError> {
        match &e.kind {
            Expr::Float(v, _) => Ok(*v),
            Expr::Unary("-", inner) => Ok(-self.const_num(inner)?),
            _ => Ok(self.const_int(e)? as f64),
        }
    }
}

/// A resolvable storage location.
#[derive(Clone, Debug)]
enum Place {
    /// Register-resident scalar local.
    Reg(VReg, Ty),
    /// Memory at `base + off`.
    Mem(Base, i32, Ty),
}

#[derive(Clone, Debug)]
enum Binding {
    Reg(VReg, Ty),
    Slot(SlotId, Ty),
}

struct FnLower<'l, 'a> {
    lw: &'l mut Lower<'a>,
    f: IrFunc,
    cur: usize,
    terminated: bool,
    scopes: Vec<HashMap<String, Binding>>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
    ret_ty: Ty,
    addressed: HashSet<String>,
}

impl<'l, 'a> FnLower<'l, 'a> {
    fn run(lw: &'l mut Lower<'a>, src: &Func) -> Result<IrFunc, CError> {
        let addressed = collect_addressed(&src.body);
        let mut f = IrFunc {
            name: asm_symbol(&src.name),
            params: Vec::new(),
            ret_class: if src.ret == Ty::Void { None } else { Some(class_of(&src.ret)) },
            blocks: vec![Block { insts: Vec::new(), term: Term::Ret(None) }],
            vclass: Vec::new(),
            slots: Vec::new(),
        };
        let mut scope = HashMap::new();
        let structs: Vec<_> = lw.prog.structs.to_vec();
        for (pname, pty) in &src.params {
            if !pty.is_scalar() {
                return Err(err(src.line, format!("parameter `{pname}` must be scalar")));
            }
            let v = f.new_vreg(class_of(pty));
            f.params.push(v);
            if addressed.contains(pname) {
                let slot = f.new_slot(pty.size(&structs).max(4), pty.align(&structs).max(4));
                f.blocks[0].insts.push(Inst::Store {
                    w: width_of(pty),
                    rs: v,
                    base: Base::Slot(slot),
                    off: 0,
                });
                scope.insert(pname.clone(), Binding::Slot(slot, pty.clone()));
            } else {
                scope.insert(pname.clone(), Binding::Reg(v, pty.clone()));
            }
        }
        let mut fl = FnLower {
            lw,
            f,
            cur: 0,
            terminated: false,
            scopes: vec![scope],
            breaks: Vec::new(),
            continues: Vec::new(),
            ret_ty: src.ret.clone(),
            addressed,
        };
        for s in &src.body {
            fl.stmt(s)?;
        }
        if !fl.terminated {
            let term = if fl.ret_ty == Ty::Void {
                Term::Ret(None)
            } else {
                // Falling off a value-returning function yields 0 (the
                // suite's `main`s rely on explicit returns; this is the
                // C89-tolerant fallback).
                let z = fl.f.new_vreg(class_of(&fl.ret_ty.clone()));
                match class_of(&fl.ret_ty) {
                    Class::Int => fl.emit(Inst::MovI { rd: z, v: 0 }),
                    _ => fl.emit(Inst::MovF { rd: z, v: 0.0 }),
                }
                Term::Ret(Some(z))
            };
            fl.set_term(term);
        }
        Ok(fl.f)
    }

    // ---- block plumbing ----

    fn emit(&mut self, i: Inst) {
        if !self.terminated {
            self.f.blocks[self.cur].insts.push(i);
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.f.blocks.push(Block { insts: Vec::new(), term: Term::Ret(None) });
        BlockId(self.f.blocks.len() as u32 - 1)
    }

    fn set_term(&mut self, t: Term) {
        if !self.terminated {
            self.f.blocks[self.cur].term = t;
            self.terminated = true;
        }
    }

    fn start_block(&mut self, b: BlockId) {
        if !self.terminated {
            self.f.blocks[self.cur].term = Term::Jmp(b);
        }
        self.cur = b.0 as usize;
        self.terminated = false;
    }

    fn vreg(&mut self, c: Class) -> VReg {
        self.f.new_vreg(c)
    }

    fn structs(&self) -> Vec<crate::ast::StructDef> {
        self.lw.prog.structs.to_vec()
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.rvalue_or_void(e)?;
                Ok(())
            }
            Stmt::Block(items) => {
                self.scopes.push(HashMap::new());
                for it in items {
                    self.stmt(it)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decls) => {
                for (name, ty, init, line) in decls {
                    self.local_decl(name, ty, init.as_ref(), *line)?;
                }
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let tb = self.new_block();
                let eb = self.new_block();
                let join = if els.is_some() { self.new_block() } else { eb };
                self.lower_cond(cond, tb, eb)?;
                self.cur = tb.0 as usize;
                self.terminated = false;
                self.stmt(then)?;
                if !self.terminated {
                    self.f.blocks[self.cur].term = Term::Jmp(join);
                    self.terminated = true;
                }
                if let Some(els) = els {
                    self.cur = eb.0 as usize;
                    self.terminated = false;
                    self.stmt(els)?;
                    if !self.terminated {
                        self.f.blocks[self.cur].term = Term::Jmp(join);
                        self.terminated = true;
                    }
                }
                self.cur = join.0 as usize;
                self.terminated = false;
                Ok(())
            }
            Stmt::While(cond, body) => {
                let head = self.new_block();
                let bodyb = self.new_block();
                let exit = self.new_block();
                self.start_block(head);
                self.lower_cond(cond, bodyb, exit)?;
                self.cur = bodyb.0 as usize;
                self.terminated = false;
                self.breaks.push(exit);
                self.continues.push(head);
                self.stmt(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.set_term(Term::Jmp(head));
                self.cur = exit.0 as usize;
                self.terminated = false;
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let bodyb = self.new_block();
                let check = self.new_block();
                let exit = self.new_block();
                self.start_block(bodyb);
                self.breaks.push(exit);
                self.continues.push(check);
                self.stmt(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.start_block(check);
                self.lower_cond(cond, bodyb, exit)?;
                self.cur = exit.0 as usize;
                self.terminated = false;
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.new_block();
                let bodyb = self.new_block();
                let stepb = self.new_block();
                let exit = self.new_block();
                self.start_block(head);
                match cond {
                    Some(c) => self.lower_cond(c, bodyb, exit)?,
                    None => self.set_term(Term::Jmp(bodyb)),
                }
                self.cur = bodyb.0 as usize;
                self.terminated = false;
                self.breaks.push(exit);
                self.continues.push(stepb);
                self.stmt(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.start_block(stepb);
                if let Some(st) = step {
                    self.rvalue_or_void(st)?;
                }
                self.set_term(Term::Jmp(head));
                self.cur = exit.0 as usize;
                self.terminated = false;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(v, line) => {
                match (v, self.ret_ty.clone()) {
                    (None, Ty::Void) => self.set_term(Term::Ret(None)),
                    (Some(_), Ty::Void) => {
                        return Err(err(*line, "returning a value from void function"))
                    }
                    (None, _) => return Err(err(*line, "missing return value")),
                    (Some(e), ret_ty) => {
                        let (v, ty) = self.rvalue(e)?;
                        let v = self.convert(v, &ty, &ret_ty, *line)?;
                        self.set_term(Term::Ret(Some(v)));
                    }
                }
                Ok(())
            }
            Stmt::Break(line) => {
                let target = *self.breaks.last().ok_or_else(|| err(*line, "break outside loop"))?;
                self.set_term(Term::Jmp(target));
                Ok(())
            }
            Stmt::Continue(line) => {
                let target =
                    *self.continues.last().ok_or_else(|| err(*line, "continue outside loop"))?;
                self.set_term(Term::Jmp(target));
                Ok(())
            }
        }
    }

    fn local_decl(
        &mut self,
        name: &str,
        ty: &Ty,
        init: Option<&Init>,
        line: usize,
    ) -> Result<(), CError> {
        let structs = self.structs();
        let addressed = false; // refined below: scalars use the precomputed set
        let needs_slot = !ty.is_scalar() || addressed || self.is_addressed(name);
        if needs_slot {
            if ty.size(&structs) == 0 {
                return Err(err(line, format!("`{name}` has zero size")));
            }
            let slot = self.f.new_slot(ty.size(&structs).max(4), ty.align(&structs).max(4));
            self.scopes
                .last_mut()
                .expect("scope stack")
                .insert(name.to_string(), Binding::Slot(slot, ty.clone()));
            if let Some(init) = init {
                self.init_slot(slot, ty, init, line)?;
            }
        } else {
            let v = self.vreg(class_of(ty));
            self.scopes
                .last_mut()
                .expect("scope stack")
                .insert(name.to_string(), Binding::Reg(v, ty.clone()));
            if let Some(Init::Expr(e)) = init {
                let (rv, rty) = self.rvalue(e)?;
                let rv = self.convert(rv, &rty, ty, line)?;
                self.emit(Inst::Mov { rd: v, rs: rv });
            } else if let Some(Init::List(_)) = init {
                return Err(err(line, "brace initializer on scalar local"));
            }
        }
        Ok(())
    }

    /// Whether this function ever takes `&name` (conservative, name-based).
    fn is_addressed(&self, name: &str) -> bool {
        self.addressed.contains(name)
    }

    fn init_slot(&mut self, slot: SlotId, ty: &Ty, init: &Init, line: usize) -> Result<(), CError> {
        let structs = self.structs();
        match (ty, init) {
            (Ty::Array(elem, n), Init::List(items)) => {
                if items.len() > *n as usize {
                    return Err(err(line, "too many initializers"));
                }
                let esz = elem.size(&structs) as i32;
                for (i, item) in items.iter().enumerate() {
                    match item {
                        Init::Expr(e) if elem.is_scalar() => {
                            let (v, vty) = self.rvalue(e)?;
                            let v = self.convert(v, &vty, elem, line)?;
                            self.emit(Inst::Store {
                                w: width_of(elem),
                                rs: v,
                                base: Base::Slot(slot),
                                off: i as i32 * esz,
                            });
                        }
                        _ => return Err(err(line, "nested local initializers unsupported")),
                    }
                }
                // Remaining elements are uninitialized, as in C.
                Ok(())
            }
            (Ty::Array(elem, n), Init::Expr(e)) => {
                if let (Ty::Char, Expr::Str(bytes)) = (elem.as_ref(), &e.kind) {
                    if bytes.len() + 1 > *n as usize {
                        return Err(err(line, "string too long for array"));
                    }
                    let mut data = bytes.clone();
                    data.push(0);
                    for (i, byte) in data.iter().enumerate() {
                        let v = self.vreg(Class::Int);
                        self.emit(Inst::MovI { rd: v, v: *byte as i32 });
                        self.emit(Inst::Store {
                            w: MemWidth::B,
                            rs: v,
                            base: Base::Slot(slot),
                            off: i as i32,
                        });
                    }
                    Ok(())
                } else {
                    Err(err(line, "array initializer must be a brace list"))
                }
            }
            (_, Init::Expr(e)) if ty.is_scalar() => {
                let (v, vty) = self.rvalue(e)?;
                let v = self.convert(v, &vty, ty, line)?;
                self.emit(Inst::Store { w: width_of(ty), rs: v, base: Base::Slot(slot), off: 0 });
                Ok(())
            }
            _ => Err(err(line, "unsupported local initializer")),
        }
    }

    // ---- conditions (branch context) ----

    fn lower_cond(&mut self, e: &E, t: BlockId, f: BlockId) -> Result<(), CError> {
        match &e.kind {
            Expr::Binary("&&", a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, mid, f)?;
                self.cur = mid.0 as usize;
                self.terminated = false;
                self.lower_cond(b, t, f)
            }
            Expr::Binary("||", a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, t, mid)?;
                self.cur = mid.0 as usize;
                self.terminated = false;
                self.lower_cond(b, t, f)
            }
            Expr::Unary("!", inner) => self.lower_cond(inner, f, t),
            Expr::Binary(op, a, b) if matches!(*op, "==" | "!=" | "<" | ">" | "<=" | ">=") => {
                let v = self.relational(op, a, b, e.line, true)?;
                self.set_term(Term::Br { v, t, f });
                Ok(())
            }
            _ => {
                let (v, ty) = self.rvalue(e)?;
                let v = match class_of(&ty) {
                    Class::Int => v,
                    // `if (x)` on a float compares against 0.0.
                    c => {
                        let z = self.vreg(c);
                        self.emit(Inst::MovF { rd: z, v: 0.0 });
                        let r = self.vreg(Class::Int);
                        self.emit(Inst::FCmp { cond: FpCond::Eq, rd: r, a: v, b: z });
                        let inv = self.vreg(Class::Int);
                        self.emit(Inst::Bin { op: BinOp::Xor, rd: inv, a: r, b: Operand::Imm(1) });
                        inv
                    }
                };
                self.set_term(Term::Br { v, t, f });
                Ok(())
            }
        }
    }

    /// Lowers a relational operator. With `machine_bool` the result is the
    /// raw compare output (0 / all-ones for int, 0/1 for float); otherwise
    /// it is normalized to C's 0/1.
    fn relational(
        &mut self,
        op: &str,
        a: &E,
        b: &E,
        line: usize,
        machine_bool: bool,
    ) -> Result<VReg, CError> {
        let (va, ta) = self.rvalue(a)?;
        let (vb, tb) = self.rvalue(b)?;
        let common = usual_type(&ta, &tb);
        let va = self.convert(va, &ta, &common, line)?;
        let vb = self.convert(vb, &tb, &common, line)?;
        if common.is_float() {
            // Map onto the eq/lt/le FPU conditions.
            let (cond, swap, invert) = match op {
                "==" => (FpCond::Eq, false, false),
                "!=" => (FpCond::Eq, false, true),
                "<" => (FpCond::Lt, false, false),
                "<=" => (FpCond::Le, false, false),
                ">" => (FpCond::Lt, true, false),
                ">=" => (FpCond::Le, true, false),
                _ => unreachable!(),
            };
            let (x, y) = if swap { (vb, va) } else { (va, vb) };
            let rd = self.vreg(Class::Int);
            self.emit(Inst::FCmp { cond, rd, a: x, b: y });
            if invert {
                let inv = self.vreg(Class::Int);
                self.emit(Inst::Bin { op: BinOp::Xor, rd: inv, a: rd, b: Operand::Imm(1) });
                return Ok(inv);
            }
            return Ok(rd);
        }
        let unsigned = common == Ty::Uint || matches!(common, Ty::Ptr(_));
        let cond = match (op, unsigned) {
            ("==", _) => Cond::Eq,
            ("!=", _) => Cond::Ne,
            ("<", false) => Cond::Lt,
            ("<", true) => Cond::Ltu,
            ("<=", false) => Cond::Le,
            ("<=", true) => Cond::Leu,
            (">", false) => Cond::Gt,
            (">", true) => Cond::Gtu,
            (">=", false) => Cond::Ge,
            (">=", true) => Cond::Geu,
            _ => unreachable!(),
        };
        let rd = self.vreg(Class::Int);
        self.emit(Inst::Cmp { cond, rd, a: va, b: Operand::Reg(vb) });
        if machine_bool {
            Ok(rd)
        } else {
            // 0 / all-ones -> 0 / 1.
            let norm = self.vreg(Class::Int);
            self.emit(Inst::Neg { rd: norm, rs: rd });
            Ok(norm)
        }
    }

    // ---- expressions ----

    fn rvalue_or_void(&mut self, e: &E) -> Result<Option<(VReg, Ty)>, CError> {
        if let Expr::Call(name, args) = &e.kind {
            let sig = self.call_sig(name, e.line)?;
            if sig.0 == Ty::Void {
                self.lower_call(name, args, None, e.line)?;
                return Ok(None);
            }
        }
        Ok(Some(self.rvalue(e)?))
    }

    fn call_sig(&self, name: &str, line: usize) -> Result<(Ty, Vec<Ty>), CError> {
        if let Some(sig) = self.lw.sigs.get(name) {
            return Ok(sig.clone());
        }
        match name {
            "__putc" | "__puti" | "__halt" => Ok((Ty::Void, vec![Ty::Int])),
            "__insns" => Ok((Ty::Int, vec![])),
            _ => Err(err(line, format!("call to undefined function `{name}`"))),
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[E],
        ret: Option<(VReg, Ty)>,
        line: usize,
    ) -> Result<(), CError> {
        let (_, ptys) = self.call_sig(name, line)?;
        if ptys.len() != args.len() {
            return Err(err(
                line,
                format!("`{name}` expects {} arguments, got {}", ptys.len(), args.len()),
            ));
        }
        let mut avs = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&ptys) {
            let (v, ty) = self.rvalue(a)?;
            let v = self.convert(v, &ty, pty, line)?;
            avs.push(v);
        }
        self.emit(Inst::Call { func: asm_symbol(name), args: avs, ret: ret.map(|(v, _)| v) });
        Ok(())
    }

    fn rvalue(&mut self, e: &E) -> Result<(VReg, Ty), CError> {
        let line = e.line;
        match &e.kind {
            Expr::Int(v) => {
                if *v > u32::MAX as i64 || *v < i32::MIN as i64 {
                    return Err(err(line, format!("integer {v} out of 32-bit range")));
                }
                let rd = self.vreg(Class::Int);
                self.emit(Inst::MovI { rd, v: *v as i32 });
                Ok((rd, Ty::Int))
            }
            Expr::Float(v, is_f32) => {
                let ty = if *is_f32 { Ty::Float } else { Ty::Double };
                let rd = self.vreg(class_of(&ty));
                self.emit(Inst::MovF { rd, v: *v });
                Ok((rd, ty))
            }
            Expr::Str(s) => {
                let label = self.lw.intern_string(s);
                let rd = self.vreg(Class::Int);
                self.emit(Inst::Addr { rd, base: Base::Global(label), off: 0 });
                Ok((rd, Ty::Ptr(Box::new(Ty::Char))))
            }
            Expr::Ident(_) | Expr::Index(..) | Expr::Member(..) | Expr::Unary("*", _) => {
                let place = self.place(e)?;
                self.load_place(place, line)
            }
            Expr::Unary("&", inner) => {
                let place = self.place(inner)?;
                match place {
                    Place::Reg(..) => Err(err(line, "cannot take address of register variable")),
                    Place::Mem(base, off, ty) => {
                        let rd = self.vreg(Class::Int);
                        self.emit(Inst::Addr { rd, base, off });
                        Ok((rd, Ty::Ptr(Box::new(ty))))
                    }
                }
            }
            Expr::Unary("-", inner) => {
                let (v, ty) = self.rvalue(inner)?;
                let rd = self.vreg(class_of(&ty));
                if ty.is_float() {
                    self.emit(Inst::FNeg { rd, rs: v });
                } else {
                    self.emit(Inst::Neg { rd, rs: v });
                }
                Ok((rd, promote(&ty)))
            }
            Expr::Unary("~", inner) => {
                let (v, ty) = self.rvalue(inner)?;
                if ty.is_float() {
                    return Err(err(line, "~ on a floating value"));
                }
                let rd = self.vreg(Class::Int);
                self.emit(Inst::Not { rd, rs: v });
                Ok((rd, promote(&ty)))
            }
            Expr::Unary("!", inner) => {
                let (v, ty) = self.rvalue(inner)?;
                if ty.is_float() {
                    let z = self.vreg(class_of(&ty));
                    self.emit(Inst::MovF { rd: z, v: 0.0 });
                    let rd = self.vreg(Class::Int);
                    self.emit(Inst::FCmp { cond: FpCond::Eq, rd, a: v, b: z });
                    return Ok((rd, Ty::Int));
                }
                let m = self.vreg(Class::Int);
                self.emit(Inst::Cmp { cond: Cond::Eq, rd: m, a: v, b: Operand::Imm(0) });
                let rd = self.vreg(Class::Int);
                self.emit(Inst::Neg { rd, rs: m });
                Ok((rd, Ty::Int))
            }
            Expr::Unary(op, _) => Err(err(line, format!("unsupported unary `{op}`"))),
            Expr::PreIncDec(op, inner) => {
                let place = self.place(inner)?;
                let (v, ty) = self.load_place(place.clone(), line)?;
                let one = self.step_value(&ty, line)?;
                let rd = self.apply_incdec(op, v, one, &ty);
                self.store_place(&place, rd, &ty, line)?;
                Ok((rd, ty))
            }
            Expr::PostIncDec(op, inner) => {
                let place = self.place(inner)?;
                let (v, ty) = self.load_place(place.clone(), line)?;
                // Preserve the old value (++/-- is integer/pointer only).
                let old = self.vreg(class_of(&ty));
                self.emit(Inst::Mov { rd: old, rs: v });
                let one = self.step_value(&ty, line)?;
                let rd = self.apply_incdec(op, v, one, &ty);
                self.store_place(&place, rd, &ty, line)?;
                Ok((old, ty))
            }
            Expr::Binary(op, a, b) => self.binary(op, a, b, line),
            Expr::Assign(op, lhs, rhs) => {
                let place = self.place(lhs)?;
                let lty = place_ty(&place);
                let value = if *op == "=" {
                    let (rv, rty) = self.rvalue(rhs)?;
                    self.convert(rv, &rty, &lty, line)?
                } else {
                    let bare = &op[..op.len() - 1];
                    let cur = self.load_place(place.clone(), line)?;
                    let combined = self.binary_vals(bare, cur, rhs, line)?;
                    self.convert(combined.0, &combined.1, &lty, line)?
                };
                self.store_place(&place, value, &lty, line)?;
                Ok((value, lty))
            }
            Expr::Ternary(c, t, f) => {
                let tb = self.new_block();
                let fb = self.new_block();
                let join = self.new_block();
                self.lower_cond(c, tb, fb)?;
                self.cur = tb.0 as usize;
                self.terminated = false;
                let (tv, tty) = self.rvalue(t)?;
                let tend = BlockId(self.cur as u32);
                let t_done = self.terminated;
                self.cur = fb.0 as usize;
                self.terminated = false;
                let (fv, fty) = self.rvalue(f)?;
                let common = usual_type(&tty, &fty);
                let fv2 = self.convert(fv, &fty, &common, line)?;
                let rd = self.vreg(class_of(&common));
                self.emit(Inst::Mov { rd, rs: fv2 });
                self.set_term(Term::Jmp(join));
                // Back-patch the true arm.
                self.cur = tend.0 as usize;
                self.terminated = t_done;
                let tv2 = self.convert(tv, &tty, &common, line)?;
                self.emit(Inst::Mov { rd, rs: tv2 });
                self.set_term(Term::Jmp(join));
                self.cur = join.0 as usize;
                self.terminated = false;
                Ok((rd, common))
            }
            Expr::Call(name, args) => {
                let (rty, _) = self.call_sig(name, line)?;
                if rty == Ty::Void {
                    return Err(err(line, format!("void value of `{name}` used")));
                }
                let rd = self.vreg(class_of(&rty));
                self.lower_call(name, args, Some((rd, rty.clone())), line)?;
                Ok((rd, rty))
            }
            Expr::Cast(ty, inner) => {
                let (v, vty) = self.rvalue(inner)?;
                let v = self.convert(v, &vty, ty, line)?;
                Ok((v, ty.clone()))
            }
            Expr::SizeofTy(t) => {
                let rd = self.vreg(Class::Int);
                self.emit(Inst::MovI { rd, v: t.size(&self.structs()) as i32 });
                Ok((rd, Ty::Int))
            }
            Expr::SizeofVal(inner) => {
                // Arrays (and structs) must not decay under sizeof: try to
                // resolve the operand as a place first.
                let save_blocks = self.f.blocks.clone();
                let save_vclass = self.f.vclass.clone();
                let save_cur = self.cur;
                let save_term = self.terminated;
                let place_ty = self.place(inner).ok().map(|p| place_ty(&p));
                self.f.blocks = save_blocks;
                self.f.vclass = save_vclass;
                self.cur = save_cur;
                self.terminated = save_term;
                let ty = match place_ty {
                    Some(t) => t,
                    None => self.type_of(inner)?,
                };
                let rd = self.vreg(Class::Int);
                self.emit(Inst::MovI { rd, v: ty.size(&self.structs()) as i32 });
                Ok((rd, Ty::Int))
            }
        }
    }

    fn step_value(&mut self, ty: &Ty, line: usize) -> Result<i32, CError> {
        match ty {
            Ty::Ptr(inner) => Ok(inner.size(&self.structs()) as i32),
            t if t.is_int() => Ok(1),
            _ => Err(err(line, "++/-- on a floating value is unsupported")),
        }
    }

    fn apply_incdec(&mut self, op: &str, v: VReg, step: i32, ty: &Ty) -> VReg {
        let rd = self.vreg(class_of(ty));
        let bop = if op == "++" { BinOp::Add } else { BinOp::Sub };
        self.emit(Inst::Bin { op: bop, rd, a: v, b: Operand::Imm(step) });
        rd
    }

    fn binary(
        &mut self,
        op: &'static str,
        a: &E,
        b: &E,
        line: usize,
    ) -> Result<(VReg, Ty), CError> {
        match op {
            "&&" | "||" => {
                // Value context: produce 0/1 through control flow.
                let tb = self.new_block();
                let fb = self.new_block();
                let join = self.new_block();
                let e =
                    E { kind: Expr::Binary(op, Box::new(a.clone()), Box::new(b.clone())), line };
                let rd = self.vreg(Class::Int);
                self.lower_cond(&e, tb, fb)?;
                self.cur = tb.0 as usize;
                self.terminated = false;
                self.emit(Inst::MovI { rd, v: 1 });
                self.set_term(Term::Jmp(join));
                self.cur = fb.0 as usize;
                self.terminated = false;
                self.emit(Inst::MovI { rd, v: 0 });
                self.set_term(Term::Jmp(join));
                self.cur = join.0 as usize;
                self.terminated = false;
                Ok((rd, Ty::Int))
            }
            "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                let v = self.relational(op, a, b, line, false)?;
                Ok((v, Ty::Int))
            }
            _ => {
                let av = self.rvalue(a)?;
                self.binary_vals(op, av, b, line)
            }
        }
    }

    fn binary_vals(
        &mut self,
        op: &str,
        (va, ta): (VReg, Ty),
        b: &E,
        line: usize,
    ) -> Result<(VReg, Ty), CError> {
        let (vb, tb) = self.rvalue(b)?;
        // Pointer arithmetic.
        if let Ty::Ptr(pointee) = &ta {
            if (op == "+" || op == "-") && tb.is_int() {
                let size = pointee.size(&self.structs()) as i32;
                let scaled = if size == 1 {
                    vb
                } else {
                    let s = self.vreg(Class::Int);
                    self.emit(Inst::Bin { op: BinOp::Mul, rd: s, a: vb, b: Operand::Imm(size) });
                    s
                };
                let rd = self.vreg(Class::Int);
                let bop = if op == "+" { BinOp::Add } else { BinOp::Sub };
                self.emit(Inst::Bin { op: bop, rd, a: va, b: Operand::Reg(scaled) });
                return Ok((rd, ta));
            }
            if op == "-" {
                if let Ty::Ptr(_) = tb {
                    let size = pointee.size(&self.structs()) as i32;
                    let diff = self.vreg(Class::Int);
                    self.emit(Inst::Bin { op: BinOp::Sub, rd: diff, a: va, b: Operand::Reg(vb) });
                    if size == 1 {
                        return Ok((diff, Ty::Int));
                    }
                    let rd = self.vreg(Class::Int);
                    self.emit(Inst::Bin { op: BinOp::Div, rd, a: diff, b: Operand::Imm(size) });
                    return Ok((rd, Ty::Int));
                }
            }
        }
        if let (Ty::Ptr(pointee), "+") = (&tb, op) {
            if ta.is_int() {
                // int + ptr commutes to ptr + int.
                let size = pointee.size(&self.structs()) as i32;
                let scaled = if size == 1 {
                    va
                } else {
                    let sreg = self.vreg(Class::Int);
                    self.emit(Inst::Bin { op: BinOp::Mul, rd: sreg, a: va, b: Operand::Imm(size) });
                    sreg
                };
                let rd = self.vreg(Class::Int);
                self.emit(Inst::Bin { op: BinOp::Add, rd, a: vb, b: Operand::Reg(scaled) });
                return Ok((rd, tb));
            }
        }
        let common = usual_type(&ta, &tb);
        let va = self.convert(va, &ta, &common, line)?;
        let vb = self.convert(vb, &tb, &common, line)?;
        if common.is_float() {
            let fop = match op {
                "+" => FBinOp::Add,
                "-" => FBinOp::Sub,
                "*" => FBinOp::Mul,
                "/" => FBinOp::Div,
                _ => return Err(err(line, format!("`{op}` on floating operands"))),
            };
            let rd = self.vreg(class_of(&common));
            self.emit(Inst::FBin { op: fop, rd, a: va, b: vb });
            return Ok((rd, common));
        }
        let unsigned = common == Ty::Uint;
        let bop = match op {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => {
                if unsigned {
                    BinOp::UDiv
                } else {
                    BinOp::Div
                }
            }
            "%" => {
                if unsigned {
                    BinOp::URem
                } else {
                    BinOp::Rem
                }
            }
            "&" => BinOp::And,
            "|" => BinOp::Or,
            "^" => BinOp::Xor,
            "<<" => BinOp::Shl,
            ">>" => {
                if unsigned {
                    BinOp::Shr
                } else {
                    BinOp::Sar
                }
            }
            _ => return Err(err(line, format!("unsupported operator `{op}`"))),
        };
        let rd = self.vreg(Class::Int);
        self.emit(Inst::Bin { op: bop, rd, a: va, b: Operand::Reg(vb) });
        Ok((rd, common))
    }

    // ---- places ----

    fn place(&mut self, e: &E) -> Result<Place, CError> {
        let line = e.line;
        match &e.kind {
            Expr::Ident(name) => {
                if let Some(b) = self.lookup(name) {
                    return Ok(match b {
                        Binding::Reg(v, ty) => Place::Reg(v, ty),
                        Binding::Slot(s, ty) => Place::Mem(Base::Slot(s), 0, ty),
                    });
                }
                if let Some(ty) = self.lw.globals.get(name) {
                    return Ok(Place::Mem(Base::Global(asm_symbol(name)), 0, ty.clone()));
                }
                Err(err(line, format!("undefined variable `{name}`")))
            }
            Expr::Unary("*", inner) => {
                let (v, ty) = self.rvalue(inner)?;
                match ty {
                    Ty::Ptr(p) => Ok(Place::Mem(Base::Reg(v), 0, (*p).clone())),
                    _ => Err(err(line, "dereference of a non-pointer")),
                }
            }
            Expr::Index(arr, idx) => {
                let place = self.indexed_place(arr, idx, line)?;
                Ok(place)
            }
            Expr::Member(obj, field, arrow) => {
                let (base, off, sty) = if *arrow {
                    let (v, ty) = self.rvalue(obj)?;
                    match ty {
                        Ty::Ptr(p) => (Base::Reg(v), 0, (*p).clone()),
                        _ => return Err(err(line, "-> on a non-pointer")),
                    }
                } else {
                    match self.place(obj)? {
                        Place::Mem(b, o, t) => (b, o, t),
                        Place::Reg(..) => return Err(err(line, ". on a non-addressable value")),
                    }
                };
                let si = match sty {
                    Ty::Struct(i) => i,
                    _ => return Err(err(line, "member access on a non-struct")),
                };
                let def = &self.lw.prog.structs[si];
                let (_, fty, foff) = def
                    .field(field)
                    .ok_or_else(|| err(line, format!("no field `{field}` in `{}`", def.name)))?
                    .clone();
                Ok(Place::Mem(base, off + foff as i32, fty))
            }
            _ => Err(err(line, "expression is not assignable")),
        }
    }

    fn indexed_place(&mut self, arr: &E, idx: &E, line: usize) -> Result<Place, CError> {
        // Constant-index fast path keeps Base::Slot/Global addressing.
        let const_idx = match &idx.kind {
            Expr::Int(v) => Some(*v as i32),
            _ => None,
        };
        // Array-typed places index in place; pointers load then index.
        let (base, off, elem_ty): (Base, i32, Ty) = match self.place(arr) {
            Ok(Place::Mem(b, o, Ty::Array(elem, _))) => (b, o, (*elem).clone()),
            Ok(Place::Mem(b, o, Ty::Ptr(elem))) => {
                // Load the pointer value first.
                let (pv, _) = self.load_place(Place::Mem(b, o, Ty::Ptr(elem.clone())), line)?;
                (Base::Reg(pv), 0, (*elem).clone())
            }
            Ok(Place::Reg(v, Ty::Ptr(elem))) => (Base::Reg(v), 0, (*elem).clone()),
            Ok(_) => return Err(err(line, "indexing a non-array")),
            Err(e) => return Err(e),
        };
        let esize = elem_ty.size(&self.structs()) as i32;
        if let Some(ci) = const_idx {
            return Ok(Place::Mem(base, off + ci * esize, elem_ty));
        }
        let (iv, ity) = self.rvalue(idx)?;
        if !ity.is_int() {
            return Err(err(line, "array index must be an integer"));
        }
        let scaled = if esize == 1 {
            iv
        } else {
            let s = self.vreg(Class::Int);
            self.emit(Inst::Bin { op: BinOp::Mul, rd: s, a: iv, b: Operand::Imm(esize) });
            s
        };
        // Materialize the base address and add the scaled index.
        let addr = self.vreg(Class::Int);
        match base {
            Base::Reg(r) => {
                self.emit(Inst::Bin { op: BinOp::Add, rd: addr, a: r, b: Operand::Reg(scaled) })
            }
            b => {
                let ba = self.vreg(Class::Int);
                self.emit(Inst::Addr { rd: ba, base: b, off });
                self.emit(Inst::Bin { op: BinOp::Add, rd: addr, a: ba, b: Operand::Reg(scaled) });
                return Ok(Place::Mem(Base::Reg(addr), 0, elem_ty));
            }
        }
        Ok(Place::Mem(Base::Reg(addr), off, elem_ty))
    }

    fn load_place(&mut self, place: Place, line: usize) -> Result<(VReg, Ty), CError> {
        match place {
            Place::Reg(v, ty) => Ok((v, ty)),
            Place::Mem(base, off, ty) => match &ty {
                Ty::Array(..) => {
                    // Decay to a pointer to the first element.
                    let rd = self.vreg(Class::Int);
                    self.emit(Inst::Addr { rd, base, off });
                    Ok((rd, ty.decayed()))
                }
                Ty::Struct(_) => Err(err(line, "struct values must be accessed by member")),
                Ty::Void => Err(err(line, "void value")),
                scalar => {
                    let rd = self.vreg(class_of(scalar));
                    self.emit(Inst::Load { w: width_of(scalar), rd, base, off });
                    Ok((rd, promote(scalar)))
                }
            },
        }
    }

    fn store_place(&mut self, place: &Place, v: VReg, _ty: &Ty, line: usize) -> Result<(), CError> {
        match place {
            Place::Reg(dst, _) => {
                self.emit(Inst::Mov { rd: *dst, rs: v });
                Ok(())
            }
            Place::Mem(base, off, ty) => {
                if !ty.is_scalar() {
                    return Err(err(line, "cannot assign a non-scalar"));
                }
                self.emit(Inst::Store { w: width_of(ty), rs: v, base: base.clone(), off: *off });
                Ok(())
            }
        }
    }

    fn convert(&mut self, v: VReg, from: &Ty, to: &Ty, line: usize) -> Result<VReg, CError> {
        let (fc, tc) = (class_of(from), class_of(to));
        if fc == tc {
            return Ok(v);
        }
        let kind = match (fc, tc) {
            (Class::Int, Class::F32) => CvtKind::IntToF32,
            (Class::Int, Class::F64) => CvtKind::IntToF64,
            (Class::F32, Class::F64) => CvtKind::F32ToF64,
            (Class::F64, Class::F32) => CvtKind::F64ToF32,
            (Class::F32, Class::Int) => CvtKind::F32ToInt,
            (Class::F64, Class::Int) => CvtKind::F64ToInt,
            _ => return Err(err(line, "impossible conversion")),
        };
        let rd = self.vreg(tc);
        self.emit(Inst::Cvt { kind, rd, rs: v });
        Ok(rd)
    }

    /// Static type of an expression (for `sizeof expr`).
    fn type_of(&mut self, e: &E) -> Result<Ty, CError> {
        // Cheap structural reconstruction: lower into a scratch block and
        // discard. Expressions are side-effect-light in sizeof context in
        // the suite, but to be safe we snapshot and restore.
        let save_blocks = self.f.blocks.clone();
        let save_vclass = self.f.vclass.clone();
        let save_cur = self.cur;
        let save_term = self.terminated;
        let r = self.rvalue(e).map(|(_, t)| t);
        self.f.blocks = save_blocks;
        self.f.vclass = save_vclass;
        self.cur = save_cur;
        self.terminated = save_term;
        r
    }
}

fn place_ty(p: &Place) -> Ty {
    match p {
        Place::Reg(_, t) => t.clone(),
        Place::Mem(_, _, t) => t.clone(),
    }
}

fn promote(ty: &Ty) -> Ty {
    match ty {
        Ty::Char => Ty::Int,
        other => other.clone(),
    }
}

fn usual_type(a: &Ty, b: &Ty) -> Ty {
    if *a == Ty::Double || *b == Ty::Double {
        Ty::Double
    } else if *a == Ty::Float || *b == Ty::Float {
        Ty::Float
    } else if matches!(a, Ty::Ptr(_)) {
        a.clone()
    } else if matches!(b, Ty::Ptr(_)) {
        b.clone()
    } else if *a == Ty::Uint || *b == Ty::Uint {
        Ty::Uint
    } else {
        Ty::Int
    }
}

/// Collects names whose address is taken with unary `&`.
fn collect_addressed(body: &[Stmt]) -> HashSet<String> {
    let mut set = HashSet::new();
    fn walk_e(e: &E, set: &mut HashSet<String>) {
        match &e.kind {
            Expr::Unary("&", inner) => {
                if let Expr::Ident(name) = &inner.kind {
                    set.insert(name.clone());
                }
                walk_e(inner, set);
            }
            Expr::Unary(_, a) | Expr::PreIncDec(_, a) | Expr::PostIncDec(_, a) => walk_e(a, set),
            Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
                walk_e(a, set);
                walk_e(b, set);
            }
            Expr::Ternary(a, b, c) => {
                walk_e(a, set);
                walk_e(b, set);
                walk_e(c, set);
            }
            Expr::Call(_, args) => args.iter().for_each(|a| walk_e(a, set)),
            Expr::Member(a, _, _) => walk_e(a, set),
            Expr::Cast(_, a) | Expr::SizeofVal(a) => walk_e(a, set),
            _ => {}
        }
    }
    fn walk_s(s: &Stmt, set: &mut HashSet<String>) {
        match s {
            Stmt::Expr(e) => walk_e(e, set),
            Stmt::Decl(ds) => {
                for (_, _, init, _) in ds {
                    if let Some(i) = init {
                        walk_init(i, set);
                    }
                }
            }
            Stmt::If(c, t, e) => {
                walk_e(c, set);
                walk_s(t, set);
                if let Some(e) = e {
                    walk_s(e, set);
                }
            }
            Stmt::While(c, b) => {
                walk_e(c, set);
                walk_s(b, set);
            }
            Stmt::DoWhile(b, c) => {
                walk_s(b, set);
                walk_e(c, set);
            }
            Stmt::For(i, c, st, b) => {
                if let Some(i) = i {
                    walk_s(i, set);
                }
                if let Some(c) = c {
                    walk_e(c, set);
                }
                if let Some(st) = st {
                    walk_e(st, set);
                }
                walk_s(b, set);
            }
            Stmt::Return(Some(e), _) => walk_e(e, set),
            Stmt::Block(items) => items.iter().for_each(|s| walk_s(s, set)),
            _ => {}
        }
    }
    fn walk_init(i: &Init, set: &mut HashSet<String>) {
        match i {
            Init::Expr(e) => walk_e(e, set),
            Init::List(items) => items.iter().for_each(|i| walk_init(i, set)),
        }
    }
    for s in body {
        walk_s(s, &mut set);
    }
    set
}
