//! Recursive-descent parser for Mini-C.

use crate::ast::{Expr, Func, Global, Init, Program, Stmt, StructDef, Ty, E};
use crate::token::{lex, CError, Kw, Spanned, Tok};

/// Parses one source text, appending into `prog` (so several units share
/// one struct table — the whole-program compilation mode).
///
/// # Errors
///
/// Reports the first lexical or syntax error with its line.
pub fn parse_into(prog: &mut Program, src: &str) -> Result<(), CError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0, prog };
    while !p.at_eof() {
        p.top_level()?;
    }
    Ok(())
}

/// Parses one source text into a fresh [`Program`].
///
/// # Errors
///
/// Reports the first lexical or syntax error with its line.
pub fn parse(src: &str) -> Result<Program, CError> {
    let mut prog = Program::default();
    parse_into(&mut prog, src)?;
    Ok(prog)
}

struct P<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    prog: &'a mut Program,
}

impl<'a> P<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> CError {
        CError { line: self.line(), msg: msg.into() }
    }

    fn eat_p(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::P(x) if *x == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_p(&mut self, p: &str) -> Result<(), CError> {
        if self.eat_p(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if matches!(self.peek(), Tok::Kw(x) if *x == k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                msg: format!("expected identifier, found {other}"),
            }),
        }
    }

    /// Is the current token the start of a type?
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int)
                | Tok::Kw(Kw::Char)
                | Tok::Kw(Kw::Float)
                | Tok::Kw(Kw::Double)
                | Tok::Kw(Kw::Unsigned)
                | Tok::Kw(Kw::Void)
                | Tok::Kw(Kw::Struct)
        )
    }

    /// Parses a base type (no declarators).
    fn base_type(&mut self) -> Result<Ty, CError> {
        match self.bump() {
            Tok::Kw(Kw::Int) => Ok(Ty::Int),
            Tok::Kw(Kw::Char) => Ok(Ty::Char),
            Tok::Kw(Kw::Float) => Ok(Ty::Float),
            Tok::Kw(Kw::Double) => Ok(Ty::Double),
            Tok::Kw(Kw::Void) => Ok(Ty::Void),
            Tok::Kw(Kw::Unsigned) => {
                self.eat_kw(Kw::Int); // `unsigned int` == `unsigned`
                if self.eat_kw(Kw::Char) {
                    // Treat `unsigned char` as char-sized unsigned; Mini-C
                    // models it as plain (signed) char for simplicity of
                    // the suite, which never relies on the distinction.
                    return Ok(Ty::Char);
                }
                Ok(Ty::Uint)
            }
            Tok::Kw(Kw::Struct) => {
                let name = self.ident()?;
                if matches!(self.peek(), Tok::P("{")) {
                    let idx = self.struct_body(&name)?;
                    Ok(Ty::Struct(idx))
                } else {
                    let idx = self
                        .prog
                        .struct_by_name(&name)
                        .ok_or_else(|| self.err(format!("unknown struct `{name}`")))?;
                    Ok(Ty::Struct(idx))
                }
            }
            other => Err(CError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                msg: format!("expected a type, found {other}"),
            }),
        }
    }

    /// Parses `{ field; ... }` and registers the struct, returning its
    /// index.
    fn struct_body(&mut self, name: &str) -> Result<usize, CError> {
        let line = self.line();
        self.expect_p("{")?;
        if self.prog.struct_by_name(name).is_some() {
            return Err(CError { line, msg: format!("duplicate struct `{name}`") });
        }
        // Reserve the slot so self-referential pointers work.
        let idx = self.prog.structs.len();
        self.prog.structs.push(StructDef {
            name: name.to_string(),
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        let mut fields = Vec::new();
        let mut offset = 0u32;
        let mut align = 1u32;
        while !self.eat_p("}") {
            let base = self.base_type()?;
            loop {
                let (fname, ty) = self.declarator(base.clone())?;
                let (fsize, falign) = {
                    let structs = &self.prog.structs;
                    (ty.size(structs), ty.align(structs))
                };
                if fsize == 0 {
                    return Err(self.err(format!("field `{fname}` has zero size")));
                }
                offset = (offset + falign - 1) & !(falign - 1);
                fields.push((fname, ty, offset));
                offset += fsize;
                align = align.max(falign);
                if !self.eat_p(",") {
                    break;
                }
            }
            self.expect_p(";")?;
        }
        let size = (offset + align - 1) & !(align - 1);
        let def = &mut self.prog.structs[idx];
        def.fields = fields;
        def.size = size.max(1);
        def.align = align;
        Ok(idx)
    }

    /// Parses `*`* name `[N]`* against a base type.
    fn declarator(&mut self, mut ty: Ty) -> Result<(String, Ty), CError> {
        while self.eat_p("*") {
            ty = Ty::Ptr(Box::new(ty));
        }
        let name = self.ident()?;
        // Array suffixes apply outside-in: `int a[2][3]` is 2 rows of 3.
        let mut dims = Vec::new();
        while self.eat_p("[") {
            let n = match self.bump() {
                Tok::Int(n) if n > 0 && n <= u32::MAX as i64 => n as u32,
                other => return Err(self.err(format!("expected array size, found {other}"))),
            };
            self.expect_p("]")?;
            dims.push(n);
        }
        for &n in dims.iter().rev() {
            ty = Ty::Array(Box::new(ty), n);
        }
        Ok((name, ty))
    }

    fn top_level(&mut self) -> Result<(), CError> {
        let line = self.line();
        // Bare struct definition: `struct S { ... };`
        if matches!(self.peek(), Tok::Kw(Kw::Struct))
            && matches!(self.peek2(), Tok::Ident(_))
            && matches!(&self.toks[(self.pos + 2).min(self.toks.len() - 1)].tok, Tok::P("{"))
        {
            self.bump();
            let name = self.ident()?;
            self.struct_body(&name)?;
            self.expect_p(";")?;
            return Ok(());
        }
        let base = self.base_type()?;
        let (name, ty) = self.declarator(base.clone())?;
        if matches!(self.peek(), Tok::P("(")) {
            // Function definition.
            self.prog.check_fresh(&name, line)?;
            self.bump();
            let mut params = Vec::new();
            if !self.eat_p(")") {
                if matches!(self.peek(), Tok::Kw(Kw::Void)) && matches!(self.peek2(), Tok::P(")")) {
                    self.bump();
                    self.bump();
                } else {
                    loop {
                        let pbase = self.base_type()?;
                        let (pname, pty) = self.declarator(pbase)?;
                        // Array parameters decay to pointers.
                        params.push((pname, pty.decayed()));
                        if !self.eat_p(",") {
                            break;
                        }
                    }
                    self.expect_p(")")?;
                }
            }
            self.expect_p("{")?;
            let body = self.block_items()?;
            self.prog.funcs.push(Func { name, ret: ty, params, body, line });
            return Ok(());
        }
        // Global variable(s).
        let mut pending = (name, ty);
        loop {
            let (name, ty) = pending;
            self.prog.check_fresh(&name, line)?;
            let init = if self.eat_p("=") { Some(self.initializer()?) } else { None };
            self.prog.globals.push(Global { name, ty, init, line });
            if self.eat_p(",") {
                pending = self.declarator(base.clone())?;
            } else {
                break;
            }
        }
        self.expect_p(";")?;
        Ok(())
    }

    fn initializer(&mut self) -> Result<Init, CError> {
        if self.eat_p("{") {
            let mut items = Vec::new();
            if !self.eat_p("}") {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_p(",") {
                        break;
                    }
                    // Allow a trailing comma.
                    if matches!(self.peek(), Tok::P("}")) {
                        break;
                    }
                }
                self.expect_p("}")?;
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assignment()?))
        }
    }

    fn block_items(&mut self) -> Result<Vec<Stmt>, CError> {
        let mut items = Vec::new();
        while !self.eat_p("}") {
            if self.at_eof() {
                return Err(self.err("unexpected end of input in block"));
            }
            items.push(self.statement()?);
        }
        Ok(items)
    }

    fn statement(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        if self.at_type() {
            let s = self.local_decl()?;
            self.expect_p(";")?;
            return Ok(s);
        }
        match self.peek().clone() {
            Tok::P("{") => {
                self.bump();
                Ok(Stmt::Block(self.block_items()?))
            }
            Tok::P(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_p("(")?;
                let cond = self.expression()?;
                self.expect_p(")")?;
                let then = Box::new(self.statement()?);
                let els =
                    if self.eat_kw(Kw::Else) { Some(Box::new(self.statement()?)) } else { None };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_p("(")?;
                let cond = self.expression()?;
                self.expect_p(")")?;
                Ok(Stmt::While(cond, Box::new(self.statement()?)))
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.err("expected `while` after do-body"));
                }
                self.expect_p("(")?;
                let cond = self.expression()?;
                self.expect_p(")")?;
                self.expect_p(";")?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_p("(")?;
                let init = if self.eat_p(";") {
                    None
                } else if self.at_type() {
                    let d = self.local_decl()?;
                    self.expect_p(";")?;
                    Some(Box::new(d))
                } else {
                    let e = self.expression()?;
                    self.expect_p(";")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if matches!(self.peek(), Tok::P(";")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_p(";")?;
                let step = if matches!(self.peek(), Tok::P(")")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_p(")")?;
                Ok(Stmt::For(init, cond, step, Box::new(self.statement()?)))
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let v = if matches!(self.peek(), Tok::P(";")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_p(";")?;
                Ok(Stmt::Return(v, line))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_p(";")?;
                Ok(Stmt::Break(line))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_p(";")?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let e = self.expression()?;
                self.expect_p(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn local_decl(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        let base = self.base_type()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty) = self.declarator(base.clone())?;
            let init = if self.eat_p("=") { Some(self.initializer()?) } else { None };
            decls.push((name, ty, init, line));
            if !self.eat_p(",") {
                break;
            }
        }
        Ok(Stmt::Decl(decls))
    }

    // ---- expressions (precedence climbing) ----

    fn expression(&mut self) -> Result<E, CError> {
        // No comma operator in Mini-C (the suite never needs it).
        self.assignment()
    }

    fn assignment(&mut self) -> Result<E, CError> {
        let line = self.line();
        let lhs = self.ternary()?;
        const ASSIGN: [&str; 11] =
            ["=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="];
        if let Tok::P(p) = self.peek() {
            if let Some(op) = ASSIGN.iter().find(|a| **a == *p) {
                let op = *op;
                self.bump();
                let rhs = self.assignment()?;
                return Ok(E { kind: Expr::Assign(op, Box::new(lhs), Box::new(rhs)), line });
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<E, CError> {
        let line = self.line();
        let cond = self.binary(0)?;
        if self.eat_p("?") {
            let t = self.expression()?;
            self.expect_p(":")?;
            let f = self.ternary()?;
            return Ok(E { kind: Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)), line });
        }
        Ok(cond)
    }

    fn binary(&mut self, min_prec: u8) -> Result<E, CError> {
        let mut lhs = self.unary()?;
        while let Tok::P(p) = self.peek() {
            let (op, prec) = match *p {
                "||" => ("||", 1),
                "&&" => ("&&", 2),
                "|" => ("|", 3),
                "^" => ("^", 4),
                "&" => ("&", 5),
                "==" => ("==", 6),
                "!=" => ("!=", 6),
                "<" => ("<", 7),
                ">" => (">", 7),
                "<=" => ("<=", 7),
                ">=" => (">=", 7),
                "<<" => ("<<", 8),
                ">>" => (">>", 8),
                "+" => ("+", 9),
                "-" => ("-", 9),
                "*" => ("*", 10),
                "/" => ("/", 10),
                "%" => ("%", 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = E { kind: Expr::Binary(op, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<E, CError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::P("-") => {
                self.bump();
                Ok(E { kind: Expr::Unary("-", Box::new(self.unary()?)), line })
            }
            Tok::P("~") => {
                self.bump();
                Ok(E { kind: Expr::Unary("~", Box::new(self.unary()?)), line })
            }
            Tok::P("!") => {
                self.bump();
                Ok(E { kind: Expr::Unary("!", Box::new(self.unary()?)), line })
            }
            Tok::P("*") => {
                self.bump();
                Ok(E { kind: Expr::Unary("*", Box::new(self.unary()?)), line })
            }
            Tok::P("&") => {
                self.bump();
                Ok(E { kind: Expr::Unary("&", Box::new(self.unary()?)), line })
            }
            Tok::P("++") => {
                self.bump();
                Ok(E { kind: Expr::PreIncDec("++", Box::new(self.unary()?)), line })
            }
            Tok::P("--") => {
                self.bump();
                Ok(E { kind: Expr::PreIncDec("--", Box::new(self.unary()?)), line })
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                if matches!(self.peek(), Tok::P("(")) && {
                    // Peek past `(` for a type keyword.
                    let save = self.pos;
                    self.pos += 1;
                    let is_ty = self.at_type();
                    self.pos = save;
                    is_ty
                } {
                    self.bump();
                    let ty = self.type_name()?;
                    self.expect_p(")")?;
                    Ok(E { kind: Expr::SizeofTy(ty), line })
                } else {
                    Ok(E { kind: Expr::SizeofVal(Box::new(self.unary()?)), line })
                }
            }
            Tok::P("(") => {
                // Cast or parenthesized expression.
                let save = self.pos;
                self.bump();
                if self.at_type() {
                    let ty = self.type_name()?;
                    self.expect_p(")")?;
                    let inner = self.unary()?;
                    return Ok(E { kind: Expr::Cast(ty, Box::new(inner)), line });
                }
                self.pos = save;
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    /// A type usable in casts/sizeof: base type plus `*`s (no abstract
    /// array declarators).
    fn type_name(&mut self) -> Result<Ty, CError> {
        let mut ty = self.base_type()?;
        while self.eat_p("*") {
            ty = Ty::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn postfix(&mut self) -> Result<E, CError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_p("[") {
                let idx = self.expression()?;
                self.expect_p("]")?;
                e = E { kind: Expr::Index(Box::new(e), Box::new(idx)), line };
            } else if self.eat_p(".") {
                let f = self.ident()?;
                e = E { kind: Expr::Member(Box::new(e), f, false), line };
            } else if self.eat_p("->") {
                let f = self.ident()?;
                e = E { kind: Expr::Member(Box::new(e), f, true), line };
            } else if self.eat_p("++") {
                e = E { kind: Expr::PostIncDec("++", Box::new(e)), line };
            } else if self.eat_p("--") {
                e = E { kind: Expr::PostIncDec("--", Box::new(e)), line };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<E, CError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(E { kind: Expr::Int(v), line }),
            Tok::Float(v, f32) => Ok(E { kind: Expr::Float(v, f32), line }),
            Tok::Char(c) => Ok(E { kind: Expr::Int(c as i64), line }),
            Tok::Str(s) => {
                // Adjacent string literals concatenate, as in C.
                let mut s = s;
                while let Tok::Str(_) = self.peek() {
                    if let Tok::Str(more) = self.bump() {
                        s.extend_from_slice(&more);
                    }
                }
                Ok(E { kind: Expr::Str(s), line })
            }
            Tok::Ident(name) => {
                if self.eat_p("(") {
                    let mut args = Vec::new();
                    if !self.eat_p(")") {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat_p(",") {
                                break;
                            }
                        }
                        self.expect_p(")")?;
                    }
                    Ok(E { kind: Expr::Call(name, args), line })
                } else {
                    Ok(E { kind: Expr::Ident(name), line })
                }
            }
            Tok::P("(") => {
                let e = self.expression()?;
                self.expect_p(")")?;
                Ok(e)
            }
            other => Err(CError { line, msg: format!("expected expression, found {other}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_globals() {
        let p = parse(
            "
int counter = 0;
int table[4] = {1, 2, 3, 4};
char *msg = \"hi\";

int add(int a, int b) { return a + b; }
",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].params.len(), 2);
        assert_eq!(p.globals[1].ty, Ty::Array(Box::new(Ty::Int), 4));
    }

    #[test]
    fn parses_struct_and_member_access() {
        let p = parse(
            "
struct node { int value; struct node *next; };
int sum(struct node *n) {
    int s = 0;
    while (n) { s += n->value; n = n->next; }
    return s;
}
",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].size, 8);
        assert_eq!(p.structs[0].field("next").unwrap().2, 4);
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "
int f(int n) {
    int i, acc = 0;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        acc += i;
        do { acc--; } while (0);
    }
    while (acc > 100) break;
    return acc;
}
",
        )
        .unwrap();
        assert_eq!(p.funcs[0].body.len(), 4, "decl, for, while, return");
    }

    #[test]
    fn parses_casts_sizeof_and_ternary() {
        let p = parse(
            "
double g(int n) {
    int sz = sizeof(double) + sizeof n;
    double x = (double)n / 2.0;
    return n > 0 ? x : -x;
}
",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn multidim_arrays() {
        let p = parse("int m[3][5]; int f(void) { return m[1][2]; }").unwrap();
        assert_eq!(p.globals[0].ty, Ty::Array(Box::new(Ty::Array(Box::new(Ty::Int), 5)), 3));
    }

    #[test]
    fn precedence_shapes() {
        let p = parse("int f(int a, int b) { return a + b * 2 == a << 1 && b; }").unwrap();
        // Just checking it parses; shape is covered by evaluation tests in
        // the lowering module.
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(parse("int x; int x;").is_err());
        assert!(parse("int f(void){return 0;} int f(void){return 1;}").is_err());
        assert!(parse("struct s {int a;}; struct s {int b;};").is_err());
    }

    #[test]
    fn syntax_errors_have_lines() {
        let e = parse("int f(void) {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unsigned_types() {
        let p = parse("unsigned a; unsigned int b; int f(unsigned x) { return (int)x; }").unwrap();
        assert_eq!(p.globals[0].ty, Ty::Uint);
        assert_eq!(p.globals[1].ty, Ty::Uint);
        assert_eq!(p.funcs[0].params[0].1, Ty::Uint);
    }

    #[test]
    fn parse_into_shares_struct_table() {
        let mut prog = Program::default();
        parse_into(&mut prog, "struct a { int x; };").unwrap();
        parse_into(&mut prog, "struct b { struct a inner; int y; };").unwrap();
        assert_eq!(prog.structs[1].size, 8);
    }
}
