//! Instruction selection: IR → machine IR under a [`TargetSpec`].
//!
//! This pass is where the paper's instruction-set features are *felt*:
//!
//! * **Two-address shapes** — a fresh destination costs a `mv` unless the
//!   left operand dies here (a cheap form of coalescing real compilers do).
//! * **Immediate fields** — constants outside the effective field sizes
//!   are materialized (D16: `mvi`/`ldc`; DLXe: `addi`/`mvhi`+`ori`).
//! * **Displacement fields** — far globals/stack words cost address
//!   arithmetic or literal-pool loads.
//! * **Compare/branch discipline** — D16 compares write `r0` and branches
//!   test `r0`; DLXe compares write any GPR and `bz`/`bnz` test it.
//! * **The FPU interface** — no FP loads/stores; FP values pass through
//!   GPRs with `mtf`/`mff`, and doubles occupy register pairs.

use crate::ir::{
    Base, BinOp, Class, CvtKind, DataChunk, DataItem, FBinOp, Inst, IrFunc, Module, Operand, Term,
    VReg,
};
use crate::mach::{DefUse, MBlock, MFunc, MInsn, MTerm, MemAddr, FR, R};
use crate::target::TargetSpec;
use d16_isa::{abi, AluOp, Cond, CvtOp, EncodingParams, FpOp, Isa, MemWidth, Prec, TrapCode, UnOp};
use std::collections::HashMap;

/// Output of selection: machine functions plus data items appended by the
/// selector (floating-point constant pools).
pub struct Selected {
    /// Machine functions in module order.
    pub funcs: Vec<MFunc>,
    /// Original data items followed by FP-constant items.
    pub data: Vec<DataItem>,
    /// Uninitialized globals (assembled as `.comm`).
    pub bss: Vec<crate::ir::BssItem>,
}

/// Whether a floating constant is built in registers (`mvi` + `mtf`) or
/// loaded from a data-segment pool under the given encoding limits.
fn movf_register_route(params: &EncodingParams, prec: Prec, v: f64) -> bool {
    let (mlo, mhi) = params.mvi_imm;
    let fits = |x: i32| x >= mlo && x <= mhi;
    match prec {
        Prec::S => fits((v as f32).to_bits() as i32),
        Prec::D => {
            let bits = v.to_bits();
            fits(bits as u32 as i32) && fits((bits >> 32) as u32 as i32)
        }
    }
}

/// Runs selection over a module.
pub fn select(module: &Module, spec: &TargetSpec) -> Selected {
    let mut data = module.data.clone();
    let mut goff: HashMap<String, u32> = module.data_offsets().into_iter().collect();
    let mut data_end = module.data_size();
    let mut fconsts: HashMap<(u64, bool), String> = HashMap::new();
    let params = spec.params();
    // Pre-intern every pool-routed FP constant so the data segment is
    // final before any gp-relative offset (in particular of bss symbols)
    // is computed.
    {
        let mut cx = Cx {
            spec,
            params,
            goff: &mut goff,
            data: &mut data,
            data_end: &mut data_end,
            fconsts: &mut fconsts,
        };
        for f in &module.funcs {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let crate::ir::Inst::MovF { rd, v } = inst {
                        let prec = match f.class(*rd) {
                            crate::ir::Class::F64 => Prec::D,
                            _ => Prec::S,
                        };
                        if !movf_register_route(&cx.params, prec, *v) {
                            cx.fp_const(*v, prec == Prec::D);
                        }
                    }
                }
            }
        }
    }
    // bss symbols live past the (now final) data segment.
    for (name, off) in module.bss_offsets(data_end) {
        goff.insert(name, off);
    }
    let mut funcs = Vec::with_capacity(module.funcs.len());
    for f in &module.funcs {
        let mut cx = Cx {
            spec,
            params,
            goff: &mut goff,
            data: &mut data,
            data_end: &mut data_end,
            fconsts: &mut fconsts,
        };
        funcs.push(select_func(f, &mut cx));
    }
    Selected { funcs, data, bss: module.bss.clone() }
}

/// Module-level selection context.
struct Cx<'a> {
    spec: &'a TargetSpec,
    params: EncodingParams,
    goff: &'a mut HashMap<String, u32>,
    data: &'a mut Vec<DataItem>,
    data_end: &'a mut u32,
    fconsts: &'a mut HashMap<(u64, bool), String>,
}

impl<'a> Cx<'a> {
    /// Interns an FP constant into the data segment, returning its symbol.
    fn fp_const(&mut self, v: f64, double: bool) -> String {
        let bits = if double { v.to_bits() } else { (v as f32).to_bits() as u64 };
        if let Some(s) = self.fconsts.get(&(bits, double)) {
            return s.clone();
        }
        let name = format!("$fc{}", self.fconsts.len());
        let (align, chunks) = if double {
            (8, vec![DataChunk::Bytes(bits.to_le_bytes().to_vec())])
        } else {
            (4, vec![DataChunk::Word(bits as u32)])
        };
        let off = (*self.data_end + align - 1) & !(align - 1);
        *self.data_end = off + if double { 8 } else { 4 };
        self.goff.insert(name.clone(), off);
        self.data.push(DataItem { name: name.clone(), align, chunks });
        self.fconsts.insert((bits, double), name.clone());
        name
    }
}

fn select_func(f: &IrFunc, cx: &mut Cx<'_>) -> MFunc {
    let mut sel = Sel::new(f, cx);
    sel.lower_params();
    for bi in 0..f.blocks.len() {
        sel.begin_block(bi);
        let block = &f.blocks[bi];
        // Detect a foldable trailing compare feeding this block's branch.
        let fold = foldable_compare(block, &sel.use_counts, &sel.def_counts);
        let upto = if fold.is_some() { block.insts.len() - 1 } else { block.insts.len() };
        for inst in &block.insts[..upto] {
            sel.lower_inst(inst);
        }
        sel.lower_term(&block.term, fold);
        sel.end_block();
    }
    sel.finish()
}

/// If the block ends `cmp rd, ...; br rd` with `rd` single-def/single-use,
/// the compare can merge with the branch.
fn foldable_compare<'b>(
    block: &'b crate::ir::Block,
    uses: &[u32],
    defs: &[u32],
) -> Option<&'b Inst> {
    let v = match &block.term {
        Term::Br { v, .. } => *v,
        _ => return None,
    };
    let last = block.insts.last()?;
    let rd = last.def()?;
    if rd != v || uses[v.0 as usize] != 1 || defs[v.0 as usize] != 1 {
        return None;
    }
    match last {
        Inst::Cmp { .. } | Inst::FCmp { .. } => Some(last),
        _ => None,
    }
}

struct Sel<'a, 'c> {
    f: &'a IrFunc,
    cx: &'a mut Cx<'c>,
    mf: MFunc,
    imap: HashMap<VReg, R>,
    fmap: HashMap<VReg, FR>,
    use_counts: Vec<u32>,
    def_counts: Vec<u32>,
    remaining: Vec<u32>,
    defined_here: Vec<bool>,
    out: Vec<MInsn>,
    param_prefix: Vec<MInsn>,
}

impl<'a, 'c> Sel<'a, 'c> {
    fn new(f: &'a IrFunc, cx: &'a mut Cx<'c>) -> Self {
        let nv = f.vreg_count();
        let mut use_counts = vec![0u32; nv];
        let mut def_counts = vec![0u32; nv];
        for b in &f.blocks {
            for i in &b.insts {
                for u in i.uses() {
                    use_counts[u.0 as usize] += 1;
                }
                if let Some(d) = i.def() {
                    def_counts[d.0 as usize] += 1;
                }
            }
            for u in b.term.uses() {
                use_counts[u.0 as usize] += 1;
            }
        }
        let remaining = use_counts.clone();
        let ret_words = match f.ret_class {
            None => 0,
            Some(Class::F64) => 2,
            Some(_) => 1,
        };
        Sel {
            f,
            cx,
            mf: MFunc {
                name: f.name.clone(),
                blocks: Vec::new(),
                nvirt_int: 0,
                nvirt_fp: 0,
                fp_prec: Vec::new(),
                slots: f.slots.clone(),
                out_words: 0,
                has_call: false,
                ret_words,
            },
            imap: HashMap::new(),
            fmap: HashMap::new(),
            use_counts,
            def_counts,
            remaining,
            defined_here: vec![false; nv],
            out: Vec::new(),
            param_prefix: Vec::new(),
        }
    }

    fn isa(&self) -> Isa {
        self.cx.spec.isa
    }

    fn emit(&mut self, i: MInsn) {
        self.out.push(i);
    }

    fn begin_block(&mut self, _bi: usize) {
        self.out = Vec::new();
        self.defined_here.iter_mut().for_each(|d| *d = false);
    }

    fn end_block(&mut self) {}

    fn prec_of(&self, v: VReg) -> Prec {
        match self.f.class(v) {
            Class::F32 => Prec::S,
            Class::F64 => Prec::D,
            Class::Int => unreachable!("int vreg in FP context"),
        }
    }

    fn mi(&mut self, v: VReg) -> R {
        if let Some(r) = self.imap.get(&v) {
            return *r;
        }
        let r = self.mf.vint();
        self.imap.insert(v, r);
        r
    }

    fn mfp(&mut self, v: VReg) -> FR {
        if let Some(r) = self.fmap.get(&v) {
            return *r;
        }
        let prec = self.prec_of(v);
        let r = self.mf.vfp(prec);
        self.fmap.insert(v, r);
        r
    }

    /// Marks an IR-level use as consumed (for last-use aliasing).
    fn consume(&mut self, v: VReg) {
        self.remaining[v.0 as usize] = self.remaining[v.0 as usize].saturating_sub(1);
    }

    /// Whether `v` dies at the current use and may donate its machine
    /// register to the instruction's destination.
    fn dies_here(&self, v: VReg) -> bool {
        self.def_counts[v.0 as usize] == 1
            && self.remaining[v.0 as usize] == 1
            && self.defined_here[v.0 as usize]
    }

    fn mark_def(&mut self, v: VReg) {
        self.defined_here[v.0 as usize] = true;
    }

    // ---- constants and addresses ----

    fn const_into(&mut self, rd: R, val: i32) {
        let (lo, hi) = self.cx.params.mvi_imm;
        if val >= lo && val <= hi {
            self.emit(MInsn::Mvi { rd, imm: val });
        } else {
            self.emit(MInsn::LoadConst { rd, val });
        }
    }

    fn materialize_const(&mut self, val: i32) -> R {
        let rd = self.mf.vint();
        self.const_into(rd, val);
        rd
    }

    fn operand_reg(&mut self, o: &Operand) -> R {
        match o {
            Operand::Reg(v) => {
                let r = self.mi(*v);
                self.consume(*v);
                r
            }
            Operand::Imm(i) => self.materialize_const(*i),
        }
    }

    /// Global-symbol gp offset (whole-program layout is known).
    fn gp_offset(&self, sym: &str) -> i32 {
        self.cx.goff.get(sym).copied().expect("globals laid out before isel") as i32
    }

    /// Materializes `sym+off` into a fresh register.
    fn addr_of_global(&mut self, sym: &str, off: i32) -> R {
        let rd = self.mf.vint();
        let goff = self.gp_offset(sym) + off;
        let (alo, ahi) = self.cx.params.alu_imm;
        if goff >= alo && goff <= ahi && !self.cx.spec.two_address {
            self.emit(MInsn::AluI { op: AluOp::Add, rd, rs1: R::P(abi::GP), imm: goff });
        } else if goff >= alo && goff <= ahi {
            self.emit(MInsn::Un { op: UnOp::Mv, rd, rs: R::P(abi::GP) });
            self.emit(MInsn::AluI { op: AluOp::Add, rd, rs1: rd, imm: goff });
        } else if (self.cx.params.mvi_imm.0..=self.cx.params.mvi_imm.1).contains(&goff) {
            self.emit(MInsn::Mvi { rd, imm: goff });
            self.emit(MInsn::Alu { op: AluOp::Add, rd, rs1: rd, rs2: R::P(abi::GP) });
        } else {
            self.emit(MInsn::LoadSym { rd, sym: sym.to_string(), off });
        }
        rd
    }

    /// Resolves an IR memory operand into a machine address, inserting
    /// address arithmetic as the displacement fields require.
    fn mem_addr(&mut self, base: &Base, off: i32, w: MemWidth) -> MemAddr {
        match base {
            Base::Slot(s) => MemAddr::SpSlot { slot: *s, extra: off },
            Base::Reg(v) => {
                let r = self.mi(*v);
                self.consume(*v);
                if self.cx.params.mem_disp_fits(w, off) {
                    MemAddr::BaseDisp { base: r, disp: off }
                } else {
                    let t = self.add_to_reg(r, off);
                    MemAddr::BaseDisp { base: t, disp: 0 }
                }
            }
            Base::Global(sym) => {
                let goff = self.gp_offset(sym) + off;
                if self.cx.params.mem_disp_fits(w, goff) {
                    MemAddr::BaseDisp { base: R::P(abi::GP), disp: goff }
                } else {
                    let t = self.addr_of_global(sym, off);
                    MemAddr::BaseDisp { base: t, disp: 0 }
                }
            }
        }
    }

    /// `rd = r + off` with the target's immediate limits.
    fn add_to_reg(&mut self, r: R, off: i32) -> R {
        let rd = self.mf.vint();
        let (alo, ahi) = self.cx.params.alu_imm;
        let pos_ok = off >= alo && off <= ahi;
        let neg_ok = -off >= alo && -off <= ahi;
        if pos_ok || neg_ok {
            let (op, imm) = if pos_ok { (AluOp::Add, off) } else { (AluOp::Sub, -off) };
            if self.cx.spec.two_address {
                self.emit(MInsn::Un { op: UnOp::Mv, rd, rs: r });
                self.emit(MInsn::AluI { op, rd, rs1: rd, imm });
            } else {
                self.emit(MInsn::AluI { op, rd, rs1: r, imm });
            }
        } else {
            self.const_into(rd, off);
            self.emit(MInsn::Alu { op: AluOp::Add, rd, rs1: rd, rs2: r });
        }
        rd
    }

    // ---- parameters ----

    fn lower_params(&mut self) {
        self.out = Vec::new();
        let arg_regs = self.cx.spec.arg_regs();
        let mut word = 0usize;
        let mut moves: Vec<MInsn> = Vec::new();
        for &p in &self.f.params {
            match self.f.class(p) {
                Class::Int => {
                    let rd = self.mi(p);
                    if word < 4 {
                        moves.push(MInsn::Un { op: UnOp::Mv, rd, rs: R::P(arg_regs[word]) });
                    } else {
                        moves.push(MInsn::Ld {
                            w: MemWidth::W,
                            rd,
                            addr: MemAddr::SpIn { index: (word - 4) as u32 },
                        });
                    }
                    word += 1;
                }
                Class::F32 => {
                    let fd = self.mfp(p);
                    if word < 4 {
                        moves.push(MInsn::Mtf { fd, hi: false, rs: R::P(arg_regs[word]) });
                    } else {
                        let t = self.mf.vint();
                        moves.push(MInsn::Ld {
                            w: MemWidth::W,
                            rd: t,
                            addr: MemAddr::SpIn { index: (word - 4) as u32 },
                        });
                        moves.push(MInsn::Mtf { fd, hi: false, rs: t });
                    }
                    word += 1;
                }
                Class::F64 => {
                    let fd = self.mfp(p);
                    for half in 0..2 {
                        let hi = half == 1;
                        if word < 4 {
                            moves.push(MInsn::Mtf { fd, hi, rs: R::P(arg_regs[word]) });
                        } else {
                            let t = self.mf.vint();
                            moves.push(MInsn::Ld {
                                w: MemWidth::W,
                                rd: t,
                                addr: MemAddr::SpIn { index: (word - 4) as u32 },
                            });
                            moves.push(MInsn::Mtf { fd, hi, rs: t });
                        }
                        word += 1;
                    }
                }
            }
            self.mark_def(p);
        }
        self.out = moves;
        // The parameter moves become a prefix of block 0; stash them until
        // begin_block(0) runs.
        let prefix = std::mem::take(&mut self.out);
        self.param_prefix = prefix;
    }

    // ---- instructions ----

    fn lower_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::MovI { rd, v } => {
                let r = self.mi(*rd);
                self.const_into(r, *v);
                self.mark_def(*rd);
            }
            Inst::MovF { rd, v } => {
                self.lower_movf(*rd, *v);
                self.mark_def(*rd);
            }
            Inst::Mov { rd, rs } => {
                match self.f.class(*rs) {
                    Class::Int => {
                        if self.dies_here(*rs) && !self.imap.contains_key(rd) {
                            let r = self.mi(*rs);
                            self.consume(*rs);
                            self.imap.insert(*rd, r);
                        } else {
                            let d = self.mi(*rd);
                            let s = self.mi(*rs);
                            self.consume(*rs);
                            self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: s });
                        }
                    }
                    _ => {
                        if self.dies_here(*rs) && !self.fmap.contains_key(rd) {
                            let r = self.mfp(*rs);
                            self.consume(*rs);
                            self.fmap.insert(*rd, r);
                        } else {
                            let prec = self.prec_of(*rs);
                            let d = self.mfp(*rd);
                            let s = self.mfp(*rs);
                            self.consume(*rs);
                            self.emit(MInsn::FMov { prec, fd: d, fs: s });
                        }
                    }
                }
                self.mark_def(*rd);
            }
            Inst::Bin { op, rd, a, b } => {
                self.lower_bin(*op, *rd, *a, b);
                self.mark_def(*rd);
            }
            Inst::Neg { rd, rs } => {
                let d = self.mi(*rd);
                let s = self.mi(*rs);
                self.consume(*rs);
                self.emit(MInsn::Un { op: UnOp::Neg, rd: d, rs: s });
                self.mark_def(*rd);
            }
            Inst::Not { rd, rs } => {
                let d = self.mi(*rd);
                let s = self.mi(*rs);
                self.consume(*rs);
                if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                    self.emit(MInsn::Un { op: UnOp::Inv, rd: d, rs: s });
                } else {
                    // DLXe dropped inv (r0 exists): xor with -1.
                    let m1 = self.materialize_const(-1);
                    self.emit(MInsn::Alu { op: AluOp::Xor, rd: d, rs1: s, rs2: m1 });
                }
                self.mark_def(*rd);
            }
            Inst::Cmp { cond, rd, a, b } => {
                let d = self.mi(*rd);
                self.lower_cmp_into(*cond, d, *a, b);
                self.mark_def(*rd);
            }
            Inst::FBin { op, rd, a, b } => {
                self.lower_fbin(*op, *rd, *a, *b);
                self.mark_def(*rd);
            }
            Inst::FNeg { rd, rs } => {
                let prec = self.prec_of(*rs);
                let d = self.mfp(*rd);
                let s = self.mfp(*rs);
                self.consume(*rs);
                self.emit(MInsn::FNeg { prec, fd: d, fs: s });
                self.mark_def(*rd);
            }
            Inst::FCmp { cond, rd, a, b } => {
                let prec = self.prec_of(*a);
                let fa = self.mfp(*a);
                let fb = self.mfp(*b);
                self.consume(*a);
                self.consume(*b);
                self.emit(MInsn::FCmp { cond: *cond, prec, fs1: fa, fs2: fb });
                let d = self.mi(*rd);
                self.emit(MInsn::Rdsr { rd: d });
                self.mark_def(*rd);
            }
            Inst::Cvt { kind, rd, rs } => {
                self.lower_cvt(*kind, *rd, *rs);
                self.mark_def(*rd);
            }
            Inst::Load { w, rd, base, off } => {
                match self.f.class(*rd) {
                    Class::Int => {
                        let addr = self.mem_addr(base, *off, *w);
                        let d = self.mi(*rd);
                        self.emit(MInsn::Ld { w: *w, rd: d, addr });
                    }
                    Class::F32 => {
                        let addr = self.mem_addr(base, *off, MemWidth::W);
                        let t = self.mf.vint();
                        self.emit(MInsn::Ld { w: MemWidth::W, rd: t, addr });
                        let fd = self.mfp(*rd);
                        self.emit(MInsn::Mtf { fd, hi: false, rs: t });
                    }
                    Class::F64 => {
                        let (alo, ahi) = self.fp_word_addrs(base, *off);
                        let t1 = self.mf.vint();
                        let t2 = self.mf.vint();
                        self.emit(MInsn::Ld { w: MemWidth::W, rd: t1, addr: alo });
                        self.emit(MInsn::Ld { w: MemWidth::W, rd: t2, addr: ahi });
                        let fd = self.mfp(*rd);
                        self.emit(MInsn::Mtf { fd, hi: false, rs: t1 });
                        self.emit(MInsn::Mtf { fd, hi: true, rs: t2 });
                    }
                }
                self.mark_def(*rd);
            }
            Inst::Store { w, rs, base, off } => match self.f.class(*rs) {
                Class::Int => {
                    let addr = self.mem_addr(base, *off, *w);
                    let s = self.mi(*rs);
                    self.consume(*rs);
                    self.emit(MInsn::St { w: *w, rs: s, addr });
                }
                Class::F32 => {
                    let fs = self.mfp(*rs);
                    self.consume(*rs);
                    let t = self.mf.vint();
                    self.emit(MInsn::Mff { rd: t, fs, hi: false });
                    let addr = self.mem_addr(base, *off, MemWidth::W);
                    self.emit(MInsn::St { w: MemWidth::W, rs: t, addr });
                }
                Class::F64 => {
                    let fs = self.mfp(*rs);
                    self.consume(*rs);
                    let (alo, ahi) = self.fp_word_addrs(base, *off);
                    let t1 = self.mf.vint();
                    self.emit(MInsn::Mff { rd: t1, fs, hi: false });
                    self.emit(MInsn::St { w: MemWidth::W, rs: t1, addr: alo });
                    let t2 = self.mf.vint();
                    self.emit(MInsn::Mff { rd: t2, fs, hi: true });
                    self.emit(MInsn::St { w: MemWidth::W, rs: t2, addr: ahi });
                }
            },
            Inst::Addr { rd, base, off } => {
                let d = self.mi(*rd);
                match base {
                    Base::Slot(s) => self.emit(MInsn::SpAddr { rd: d, slot: *s, extra: *off }),
                    Base::Global(sym) => {
                        let t = self.addr_of_global(sym, *off);
                        // addr_of_global allocated a fresh register; alias
                        // it onto the destination with a rename.
                        self.rename_last_def(t, d);
                    }
                    Base::Reg(v) => {
                        // Address of an element reached through a computed
                        // base (e.g. `&rows[i][0]` decaying to a pointer).
                        let r = self.mi(*v);
                        self.consume(*v);
                        if *off == 0 {
                            self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: r });
                        } else {
                            let t = self.add_to_reg(r, *off);
                            self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: t });
                        }
                    }
                }
                self.mark_def(*rd);
            }
            Inst::Call { func, args, ret } => {
                self.lower_call(func, args, *ret);
                if let Some(r) = ret {
                    self.mark_def(*r);
                }
            }
        }
    }

    /// Rewrites the destination register of the just-emitted sequence.
    fn rename_last_def(&mut self, from: R, to: R) {
        for i in self.out.iter_mut().rev() {
            let mut du = DefUse::default();
            replace_r(i, from, to, &mut du);
        }
    }

    /// Word addresses of the low and high halves of a 64-bit access.
    fn fp_word_addrs(&mut self, base: &Base, off: i32) -> (MemAddr, MemAddr) {
        match base {
            Base::Slot(s) => (
                MemAddr::SpSlot { slot: *s, extra: off },
                MemAddr::SpSlot { slot: *s, extra: off + 4 },
            ),
            Base::Global(sym) => {
                let goff = self.gp_offset(sym) + off;
                if self.cx.params.mem_disp_fits(MemWidth::W, goff)
                    && self.cx.params.mem_disp_fits(MemWidth::W, goff + 4)
                {
                    (
                        MemAddr::BaseDisp { base: R::P(abi::GP), disp: goff },
                        MemAddr::BaseDisp { base: R::P(abi::GP), disp: goff + 4 },
                    )
                } else {
                    let t = self.addr_of_global(sym, off);
                    (MemAddr::BaseDisp { base: t, disp: 0 }, MemAddr::BaseDisp { base: t, disp: 4 })
                }
            }
            Base::Reg(v) => {
                let r = self.mi(*v);
                self.consume(*v);
                if self.cx.params.mem_disp_fits(MemWidth::W, off)
                    && self.cx.params.mem_disp_fits(MemWidth::W, off + 4)
                {
                    (
                        MemAddr::BaseDisp { base: r, disp: off },
                        MemAddr::BaseDisp { base: r, disp: off + 4 },
                    )
                } else {
                    let t = self.add_to_reg(r, off);
                    (MemAddr::BaseDisp { base: t, disp: 0 }, MemAddr::BaseDisp { base: t, disp: 4 })
                }
            }
        }
    }

    fn lower_movf(&mut self, rd: VReg, v: f64) {
        let prec = self.prec_of(rd);
        let fd = self.mfp(rd);
        let (lo_bits, hi_bits, double) = match prec {
            Prec::S => ((v as f32).to_bits() as i32, 0, false),
            Prec::D => {
                let bits = v.to_bits();
                (bits as u32 as i32, (bits >> 32) as u32 as i32, true)
            }
        };
        if movf_register_route(&self.cx.params, prec, v) {
            // Register route: build the halves with mvi and transfer.
            let t = self.mf.vint();
            self.emit(MInsn::Mvi { rd: t, imm: lo_bits });
            self.emit(MInsn::Mtf { fd, hi: false, rs: t });
            if double {
                let t2 = self.mf.vint();
                self.emit(MInsn::Mvi { rd: t2, imm: hi_bits });
                self.emit(MInsn::Mtf { fd, hi: true, rs: t2 });
            }
        } else {
            // Memory route: constant pool in the data segment.
            let sym = self.cx.fp_const(v, double);
            if double {
                let (alo, ahi) = self.fp_word_addrs(&Base::Global(sym), 0);
                let t1 = self.mf.vint();
                let t2 = self.mf.vint();
                self.emit(MInsn::Ld { w: MemWidth::W, rd: t1, addr: alo });
                self.emit(MInsn::Ld { w: MemWidth::W, rd: t2, addr: ahi });
                self.emit(MInsn::Mtf { fd, hi: false, rs: t1 });
                self.emit(MInsn::Mtf { fd, hi: true, rs: t2 });
            } else {
                let addr = self.mem_addr(&Base::Global(sym), 0, MemWidth::W);
                let t = self.mf.vint();
                self.emit(MInsn::Ld { w: MemWidth::W, rd: t, addr });
                self.emit(MInsn::Mtf { fd, hi: false, rs: t });
            }
        }
    }

    fn lower_bin(&mut self, op: BinOp, rd: VReg, a: VReg, b: &Operand) {
        let mop = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Shr,
            BinOp::Sar => AluOp::Shra,
            _ => unreachable!("mul/div legalized before selection: {op:?}"),
        };
        // Immediate form when the field allows it.
        if let Operand::Imm(imm) = b {
            let mut imm = *imm;
            let mut mop2 = mop;
            // Canonicalize subtract-immediate into the available field.
            if mop == AluOp::Sub && self.cx.params.alu_imm_fits(AluOp::Add, -imm) && imm < 0 {
                mop2 = AluOp::Add;
                imm = -imm;
            }
            if self.cx.params.alu_imm_fits(mop2, imm) {
                let ra = self.mi(a);
                let die = self.dies_here(a);
                self.consume(a);
                if !self.cx.spec.two_address {
                    let d = self.mi(rd);
                    self.emit(MInsn::AluI { op: mop2, rd: d, rs1: ra, imm });
                } else if die && !self.imap.contains_key(&rd) {
                    self.imap.insert(rd, ra);
                    self.emit(MInsn::AluI { op: mop2, rd: ra, rs1: ra, imm });
                } else {
                    let d = self.mi(rd);
                    self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: ra });
                    self.emit(MInsn::AluI { op: mop2, rd: d, rs1: d, imm });
                }
                return;
            }
        }
        // Register form.
        let rb = self.operand_reg(b);
        let ra = self.mi(a);
        let die = self.dies_here(a);
        self.consume(a);
        if !self.cx.spec.two_address {
            let d = self.mi(rd);
            self.emit(MInsn::Alu { op: mop, rd: d, rs1: ra, rs2: rb });
        } else if die && !self.imap.contains_key(&rd) && ra != rb {
            self.imap.insert(rd, ra);
            self.emit(MInsn::Alu { op: mop, rd: ra, rs1: ra, rs2: rb });
        } else {
            let d = self.mi(rd);
            self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: ra });
            self.emit(MInsn::Alu { op: mop, rd: d, rs1: d, rs2: rb });
        }
    }

    /// Emits a compare whose machine result lands in `dest` (for D16 the
    /// hardware result register is `r0`; the value is then copied out).
    fn lower_cmp_into(&mut self, cond: Cond, dest: R, a: VReg, b: &Operand) {
        // Immediate compares exist on DLXe (and as the cmpeqi extension).
        if let Operand::Imm(imm) = b {
            let ok = self.cx.params.cmp_imm
                && (-32768..=32767).contains(imm)
                && (self.isa() == Isa::Dlxe
                    || (self.isa() == Isa::D16x && cond.in_d16())
                    || (cond == Cond::Eq && (0..=31).contains(imm)));
            if ok {
                let ra = self.mi(a);
                self.consume(a);
                if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                    self.emit(MInsn::CmpI { cond, rd: R::P(abi::R0), rs1: ra, imm: *imm });
                    if dest != R::P(abi::R0) {
                        self.emit(MInsn::Un { op: UnOp::Mv, rd: dest, rs: R::P(abi::R0) });
                    }
                } else {
                    self.emit(MInsn::CmpI { cond, rd: dest, rs1: ra, imm: *imm });
                }
                return;
            }
        }
        let rb = self.operand_reg(b);
        let ra = self.mi(a);
        self.consume(a);
        if matches!(self.isa(), Isa::D16 | Isa::D16x) {
            // Map gt/ge onto the D16 condition set by swapping operands.
            let (c, x, y) = if cond.in_d16() { (cond, ra, rb) } else { (cond.swapped(), rb, ra) };
            self.emit(MInsn::Cmp { cond: c, rd: R::P(abi::R0), rs1: x, rs2: y });
            if dest != R::P(abi::R0) {
                self.emit(MInsn::Un { op: UnOp::Mv, rd: dest, rs: R::P(abi::R0) });
            }
        } else {
            self.emit(MInsn::Cmp { cond, rd: dest, rs1: ra, rs2: rb });
        }
    }

    fn lower_fbin(&mut self, op: FBinOp, rd: VReg, a: VReg, b: VReg) {
        let prec = self.prec_of(a);
        let mop = match op {
            FBinOp::Add => FpOp::Add,
            FBinOp::Sub => FpOp::Sub,
            FBinOp::Mul => FpOp::Mul,
            FBinOp::Div => FpOp::Div,
        };
        let fb = self.mfp(b);
        let fa = self.mfp(a);
        let die_a = self.dies_here(a);
        self.consume(a);
        self.consume(b);
        if self.isa() == Isa::Dlxe {
            let d = self.mfp(rd);
            self.emit(MInsn::FAlu { op: mop, prec, fd: d, fs1: fa, fs2: fb });
        } else if die_a && !self.fmap.contains_key(&rd) && fa != fb {
            self.fmap.insert(rd, fa);
            self.emit(MInsn::FAlu { op: mop, prec, fd: fa, fs1: fa, fs2: fb });
        } else {
            let d = self.mfp(rd);
            self.emit(MInsn::FMov { prec, fd: d, fs: fa });
            self.emit(MInsn::FAlu { op: mop, prec, fd: d, fs1: d, fs2: fb });
        }
    }

    fn lower_cvt(&mut self, kind: CvtKind, rd: VReg, rs: VReg) {
        match kind {
            CvtKind::IntToF32 | CvtKind::IntToF64 => {
                let r = self.mi(rs);
                self.consume(rs);
                let fd = self.mfp(rd);
                self.emit(MInsn::Mtf { fd, hi: false, rs: r });
                let op = if kind == CvtKind::IntToF32 { CvtOp::Si2Sf } else { CvtOp::Si2Df };
                self.emit(MInsn::FCvt { op, fd, fs: fd });
            }
            CvtKind::F32ToInt | CvtKind::F64ToInt => {
                let fs = self.mfp(rs);
                self.consume(rs);
                let ft = self.mf.vfp(Prec::S);
                let op = if kind == CvtKind::F32ToInt { CvtOp::Sf2Si } else { CvtOp::Df2Si };
                self.emit(MInsn::FCvt { op, fd: ft, fs });
                let d = self.mi(rd);
                self.emit(MInsn::Mff { rd: d, fs: ft, hi: false });
            }
            CvtKind::F32ToF64 | CvtKind::F64ToF32 => {
                let fs = self.mfp(rs);
                self.consume(rs);
                let fd = self.mfp(rd);
                let op = if kind == CvtKind::F32ToF64 { CvtOp::Sf2Df } else { CvtOp::Df2Sf };
                self.emit(MInsn::FCvt { op, fd, fs });
            }
        }
    }

    fn lower_call(&mut self, func: &str, args: &[VReg], ret: Option<VReg>) {
        // Builtins lower to traps.
        match func {
            "__putc" | "__puti" | "__halt" => {
                let r = self.mi(args[0]);
                self.consume(args[0]);
                self.emit(MInsn::Un { op: UnOp::Mv, rd: R::P(abi::RET), rs: r });
                let code = match func {
                    "__putc" => TrapCode::PutChar,
                    "__puti" => TrapCode::PutInt,
                    _ => TrapCode::Halt,
                };
                self.emit(MInsn::Trap { code });
                return;
            }
            "__insns" => {
                self.emit(MInsn::Trap { code: TrapCode::ReadInsnCount });
                if let Some(rd) = ret {
                    let d = self.mi(rd);
                    self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: R::P(abi::RET) });
                }
                return;
            }
            _ => {}
        }
        self.mf.has_call = true;
        let arg_regs = self.cx.spec.arg_regs();
        let mut word = 0usize;
        let mut uses: Vec<R> = Vec::new();
        for &a in args {
            match self.f.class(a) {
                Class::Int => {
                    let r = self.mi(a);
                    self.consume(a);
                    if word < 4 {
                        self.emit(MInsn::Un { op: UnOp::Mv, rd: R::P(arg_regs[word]), rs: r });
                        uses.push(R::P(arg_regs[word]));
                    } else {
                        self.emit(MInsn::St {
                            w: MemWidth::W,
                            rs: r,
                            addr: MemAddr::SpOut { index: (word - 4) as u32 },
                        });
                    }
                    word += 1;
                }
                Class::F32 => {
                    let fs = self.mfp(a);
                    self.consume(a);
                    if word < 4 {
                        self.emit(MInsn::Mff { rd: R::P(arg_regs[word]), fs, hi: false });
                        uses.push(R::P(arg_regs[word]));
                    } else {
                        let t = self.mf.vint();
                        self.emit(MInsn::Mff { rd: t, fs, hi: false });
                        self.emit(MInsn::St {
                            w: MemWidth::W,
                            rs: t,
                            addr: MemAddr::SpOut { index: (word - 4) as u32 },
                        });
                    }
                    word += 1;
                }
                Class::F64 => {
                    let fs = self.mfp(a);
                    self.consume(a);
                    for half in 0..2 {
                        let hi = half == 1;
                        if word < 4 {
                            self.emit(MInsn::Mff { rd: R::P(arg_regs[word]), fs, hi });
                            uses.push(R::P(arg_regs[word]));
                        } else {
                            let t = self.mf.vint();
                            self.emit(MInsn::Mff { rd: t, fs, hi });
                            self.emit(MInsn::St {
                                w: MemWidth::W,
                                rs: t,
                                addr: MemAddr::SpOut { index: (word - 4) as u32 },
                            });
                        }
                        word += 1;
                    }
                }
            }
        }
        if word > 4 {
            self.mf.out_words = self.mf.out_words.max((word - 4) as u32);
        }
        let ret_fp = ret.map(|r| self.f.class(r) != Class::Int).unwrap_or(false);
        self.emit(MInsn::Call { sym: func.to_string(), uses, ret_fp });
        if let Some(rd) = ret {
            match self.f.class(rd) {
                Class::Int => {
                    let d = self.mi(rd);
                    self.emit(MInsn::Un { op: UnOp::Mv, rd: d, rs: R::P(abi::RET) });
                }
                Class::F32 => {
                    let fd = self.mfp(rd);
                    self.emit(MInsn::Mtf { fd, hi: false, rs: R::P(abi::RET) });
                }
                Class::F64 => {
                    let fd = self.mfp(rd);
                    self.emit(MInsn::Mtf { fd, hi: false, rs: R::P(abi::RET) });
                    self.emit(MInsn::Mtf { fd, hi: true, rs: R::P(Gpr3) });
                }
            }
        }
    }

    // ---- terminators ----

    fn lower_term(&mut self, term: &Term, fold: Option<&Inst>) {
        let mterm = match term {
            Term::Jmp(b) => MTerm::Jmp(b.0),
            Term::Ret(v) => {
                if let Some(v) = v {
                    match self.f.class(*v) {
                        Class::Int => {
                            let r = self.mi(*v);
                            self.consume(*v);
                            self.emit(MInsn::Un { op: UnOp::Mv, rd: R::P(abi::RET), rs: r });
                        }
                        Class::F32 => {
                            let fs = self.mfp(*v);
                            self.consume(*v);
                            self.emit(MInsn::Mff { rd: R::P(abi::RET), fs, hi: false });
                        }
                        Class::F64 => {
                            let fs = self.mfp(*v);
                            self.consume(*v);
                            self.emit(MInsn::Mff { rd: R::P(abi::RET), fs, hi: false });
                            self.emit(MInsn::Mff { rd: R::P(Gpr3), fs, hi: true });
                        }
                    }
                }
                MTerm::Ret
            }
            Term::Br { v, t, f } => {
                let (t, f) = (t.0, f.0);
                match fold {
                    Some(Inst::Cmp { cond, a, b, .. }) => {
                        self.consume(*v);
                        // Branch directly on a zero/non-zero test when the
                        // target supports it.
                        let zero_test =
                            matches!(b, Operand::Imm(0)) && matches!(cond, Cond::Eq | Cond::Ne);
                        if zero_test {
                            let ra = self.mi(*a);
                            self.consume(*a);
                            let neg = *cond == Cond::Ne;
                            if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                                self.emit(MInsn::Un { op: UnOp::Mv, rd: R::P(abi::R0), rs: ra });
                                MTerm::Bc { neg, rs: R::P(abi::R0), t, f }
                            } else {
                                MTerm::Bc { neg, rs: ra, t, f }
                            }
                        } else {
                            let dest = if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                                R::P(abi::R0)
                            } else {
                                self.mf.vint()
                            };
                            self.lower_cmp_into(*cond, dest, *a, b);
                            MTerm::Bc { neg: true, rs: dest, t, f }
                        }
                    }
                    Some(Inst::FCmp { cond, a, b, .. }) => {
                        self.consume(*v);
                        let prec = self.prec_of(*a);
                        let fa = self.mfp(*a);
                        let fb = self.mfp(*b);
                        self.consume(*a);
                        self.consume(*b);
                        self.emit(MInsn::FCmp { cond: *cond, prec, fs1: fa, fs2: fb });
                        let dest = if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                            R::P(abi::R0)
                        } else {
                            self.mf.vint()
                        };
                        self.emit(MInsn::Rdsr { rd: dest });
                        MTerm::Bc { neg: true, rs: dest, t, f }
                    }
                    _ => {
                        let r = self.mi(*v);
                        self.consume(*v);
                        if matches!(self.isa(), Isa::D16 | Isa::D16x) {
                            self.emit(MInsn::Un { op: UnOp::Mv, rd: R::P(abi::R0), rs: r });
                            MTerm::Bc { neg: true, rs: R::P(abi::R0), t, f }
                        } else {
                            MTerm::Bc { neg: true, rs: r, t, f }
                        }
                    }
                }
            }
        };
        let mut insts = std::mem::take(&mut self.out);
        if self.mf.blocks.is_empty() {
            // Prepend the parameter moves to the entry block.
            let mut pre = std::mem::take(&mut self.param_prefix);
            pre.extend(insts);
            insts = pre;
        }
        self.mf.blocks.push(MBlock { insts, term: mterm });
    }

    fn finish(self) -> MFunc {
        self.mf
    }
}

/// `r3`: the second word of a double return value.
#[allow(non_upper_case_globals)]
const Gpr3: d16_isa::Gpr = d16_isa::Gpr::new(3);

/// Replaces every occurrence of register `from` with `to` in an
/// instruction (used to rename a helper's fresh destination).
fn replace_r(i: &mut MInsn, from: R, to: R, _du: &mut DefUse) {
    let f = |r: &mut R| {
        if *r == from {
            *r = to;
        }
    };
    match i {
        MInsn::Alu { rd, rs1, rs2, .. } => {
            f(rd);
            f(rs1);
            f(rs2);
        }
        MInsn::AluI { rd, rs1, .. } => {
            f(rd);
            f(rs1);
        }
        MInsn::Un { rd, rs, .. } => {
            f(rd);
            f(rs);
        }
        MInsn::Mvi { rd, .. }
        | MInsn::Lui { rd, .. }
        | MInsn::LoadConst { rd, .. }
        | MInsn::LoadSym { rd, .. }
        | MInsn::Rdsr { rd }
        | MInsn::SpAddr { rd, .. } => f(rd),
        MInsn::Cmp { rd, rs1, rs2, .. } => {
            f(rd);
            f(rs1);
            f(rs2);
        }
        MInsn::CmpI { rd, rs1, .. } => {
            f(rd);
            f(rs1);
        }
        MInsn::Ld { rd, addr, .. } => {
            f(rd);
            if let MemAddr::BaseDisp { base, .. } = addr {
                f(base);
            }
        }
        MInsn::St { rs, addr, .. } => {
            f(rs);
            if let MemAddr::BaseDisp { base, .. } = addr {
                f(base);
            }
        }
        MInsn::Mtf { rs, .. } => f(rs),
        MInsn::Mff { rd, .. } => f(rd),
        _ => {}
    }
}
