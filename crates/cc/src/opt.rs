//! The optimizer: the GCC-class scalar optimizations the paper's
//! methodology depends on ("code compiled with all optimizations enabled").
//!
//! Passes: local constant folding/propagation, copy propagation, local
//! common-subexpression elimination (with memory epochs), branch folding
//! and jump threading, unreachable-block elimination, dead-code
//! elimination, strength reduction of multiply/divide by constants, and
//! legalization of remaining multiplies/divides into runtime-library calls
//! (neither ISA has integer multiply or divide instructions — Table 1).

use crate::ir::{BinOp, BlockId, Inst, IrFunc, Module, Operand, Term, VReg};
use std::collections::HashMap;

/// Runs only the mandatory legalization over every function: multiplies
/// and divides become runtime-library calls, nothing else changes. This is
/// the `O0` pipeline — instruction selection has no multiply or divide
/// patterns (neither ISA has the instructions), so legalization cannot be
/// skipped, but every optimization proper can.
pub fn legalize_only(module: &mut Module) {
    for f in &mut module.funcs {
        legalize_muldiv(f);
    }
}

/// Runs the full pipeline over every function.
pub fn optimize(module: &mut Module) {
    for f in &mut module.funcs {
        for _ in 0..3 {
            local_value_numbering(f);
            fold_branches(f);
            remove_unreachable(f);
            dce(f);
        }
        strength_reduce(f);
        local_value_numbering(f);
        dce(f);
        legalize_muldiv(f);
        local_value_numbering(f);
        dce(f);
    }
}

/// Value key for local CSE.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Bin(BinOp, (VReg, u32), OperandKey),
    Cmp(d16_isa::Cond, (VReg, u32), OperandKey),
    Neg((VReg, u32)),
    Not((VReg, u32)),
    Addr(String, i32),
    AddrSlot(u32, i32),
    Load(d16_isa::MemWidth, BaseKey, i32, u64),
    Cvt(crate::ir::CvtKind, (VReg, u32)),
    FBin(crate::ir::FBinOp, (VReg, u32), (VReg, u32)),
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum OperandKey {
    Imm(i32),
    Reg(VReg, u32),
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum BaseKey {
    Reg(VReg, u32),
    Slot(u32),
    Global(String),
}

/// Local constant folding, copy propagation and CSE within each block.
fn local_value_numbering(f: &mut IrFunc) {
    let nv = f.vreg_count();
    for b in &mut f.blocks {
        let mut ver = vec![0u32; nv];
        let mut consts: HashMap<VReg, i32> = HashMap::new();
        let mut copies: HashMap<VReg, (VReg, u32)> = HashMap::new();
        let mut table: HashMap<Key, (VReg, u32)> = HashMap::new();
        let mut epoch = 0u64;

        let mut out = Vec::with_capacity(b.insts.len());
        for mut inst in std::mem::take(&mut b.insts) {
            // Rewrite register uses through copies.
            {
                let resolve = |r: &mut VReg| {
                    if let Some((src, v)) = copies.get(r) {
                        if ver[src.0 as usize] == *v {
                            *r = *src;
                        }
                    }
                };
                match &mut inst {
                    Inst::Mov { rs, .. }
                    | Inst::Neg { rs, .. }
                    | Inst::Not { rs, .. }
                    | Inst::Cvt { rs, .. }
                    | Inst::FNeg { rs, .. } => resolve(rs),
                    Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                        resolve(a);
                        if let Operand::Reg(r) = b {
                            resolve(r);
                        }
                    }
                    Inst::FBin { a, b, .. } | Inst::FCmp { a, b, .. } => {
                        resolve(a);
                        resolve(b);
                    }
                    Inst::Load { base, .. } | Inst::Addr { base, .. } => {
                        if let crate::ir::Base::Reg(r) = base {
                            resolve(r);
                        }
                    }
                    Inst::Store { rs, base, .. } => {
                        resolve(rs);
                        if let crate::ir::Base::Reg(r) = base {
                            resolve(r);
                        }
                    }
                    Inst::Call { args, .. } => args.iter_mut().for_each(resolve),
                    _ => {}
                }
            }
            // Immediate-ize constant right operands; fold all-constant ops.
            if let Inst::Bin { op, rd, a, b } = &mut inst {
                if let Operand::Reg(r) = b {
                    if let Some(c) = consts.get(r) {
                        *b = Operand::Imm(*c);
                    }
                }
                if let (Some(ca), Operand::Imm(cb)) = (consts.get(a).copied(), *b) {
                    inst = Inst::MovI { rd: *rd, v: op.eval(ca, cb) };
                } else if let (Some(ca), Operand::Reg(rb)) = (consts.get(a).copied(), *b) {
                    if op.commutative() {
                        // Move the constant to the right for immediate forms.
                        *a = rb;
                        *b = Operand::Imm(ca);
                    }
                }
            }
            if let Inst::Cmp { cond, rd, a, b } = &mut inst {
                if let Operand::Reg(r) = b {
                    if let Some(c) = consts.get(r) {
                        *b = Operand::Imm(*c);
                    }
                }
                if let (Some(ca), Operand::Imm(cb)) = (consts.get(a).copied(), *b) {
                    let v = if cond.eval(ca as u32, cb as u32) { -1 } else { 0 };
                    inst = Inst::MovI { rd: *rd, v };
                }
            }
            // Algebraic identities.
            if let Inst::Bin { op, rd, a, b: Operand::Imm(c) } = &inst {
                let identity = matches!(
                    (op, c),
                    (BinOp::Add, 0)
                        | (BinOp::Sub, 0)
                        | (BinOp::Or, 0)
                        | (BinOp::Xor, 0)
                        | (BinOp::Shl, 0)
                        | (BinOp::Shr, 0)
                        | (BinOp::Sar, 0)
                );
                if identity {
                    inst = Inst::Mov { rd: *rd, rs: *a };
                } else if matches!((op, c), (BinOp::And, 0)) || matches!((op, c), (BinOp::Mul, 0)) {
                    inst = Inst::MovI { rd: *rd, v: 0 };
                } else if matches!((op, c), (BinOp::Mul, 1))
                    || matches!((op, c), (BinOp::Div, 1))
                    || matches!((op, c), (BinOp::UDiv, 1))
                {
                    inst = Inst::Mov { rd: *rd, rs: *a };
                }
            }
            // Collapse Mov/Neg/Not of a known constant.
            if let Inst::Mov { rd, rs } = &inst {
                if let Some(c) = consts.get(rs) {
                    inst = Inst::MovI { rd: *rd, v: *c };
                }
            }
            if let Inst::Neg { rd, rs } = &inst {
                if let Some(c) = consts.get(rs) {
                    inst = Inst::MovI { rd: *rd, v: c.wrapping_neg() };
                }
            }
            if let Inst::Not { rd, rs } = &inst {
                if let Some(c) = consts.get(rs) {
                    inst = Inst::MovI { rd: *rd, v: !*c };
                }
            }

            // CSE lookup for pure instructions.
            let key = cse_key(&inst, &ver, epoch);
            if let Some(k) = &key {
                if let Some((prev, pver)) = table.get(k) {
                    if ver[prev.0 as usize] == *pver {
                        if let Some(rd) = inst.def() {
                            inst = Inst::Mov { rd, rs: *prev };
                        }
                    }
                }
            }

            // Effects on the environment.
            let def = inst.def();
            if let Some(rd) = def {
                ver[rd.0 as usize] += 1;
                consts.remove(&rd);
                copies.remove(&rd);
            }
            match &inst {
                Inst::MovI { rd, v } => {
                    consts.insert(*rd, *v);
                }
                Inst::Mov { rd, rs } => {
                    copies.insert(*rd, (*rs, ver[rs.0 as usize]));
                    if let Some(c) = consts.get(rs) {
                        consts.insert(*rd, *c);
                    }
                }
                Inst::Store { .. } | Inst::Call { .. } => epoch += 1,
                _ => {}
            }
            if let (Some(k), Some(rd)) = (key, def) {
                if !matches!(inst, Inst::Mov { .. } | Inst::MovI { .. }) {
                    table.insert(k, (rd, ver[rd.0 as usize]));
                }
            }
            out.push(inst);
        }
        b.insts = out;

        // Fold the terminator's condition through the block environment.
        if let Term::Br { v, t, f: fb } = b.term.clone() {
            let mut v = v;
            if let Some((src, vv)) = copies.get(&v) {
                if ver[src.0 as usize] == *vv {
                    v = *src;
                }
            }
            b.term = match consts.get(&v) {
                Some(0) => Term::Jmp(fb),
                Some(_) => Term::Jmp(t),
                None => Term::Br { v, t, f: fb },
            };
        }
    }
}

fn cse_key(inst: &Inst, ver: &[u32], epoch: u64) -> Option<Key> {
    let vk = |r: &VReg| (*r, ver[r.0 as usize]);
    let ok = |o: &Operand| match o {
        Operand::Imm(i) => OperandKey::Imm(*i),
        Operand::Reg(r) => OperandKey::Reg(*r, ver[r.0 as usize]),
    };
    let bk = |b: &crate::ir::Base| match b {
        crate::ir::Base::Reg(r) => BaseKey::Reg(*r, ver[r.0 as usize]),
        crate::ir::Base::Slot(s) => BaseKey::Slot(s.0),
        crate::ir::Base::Global(g) => BaseKey::Global(g.clone()),
    };
    Some(match inst {
        Inst::Bin { op, a, b, .. } => Key::Bin(*op, vk(a), ok(b)),
        Inst::Cmp { cond, a, b, .. } => Key::Cmp(*cond, vk(a), ok(b)),
        Inst::Neg { rs, .. } => Key::Neg(vk(rs)),
        Inst::Not { rs, .. } => Key::Not(vk(rs)),
        Inst::Addr { base, off, .. } => match base {
            crate::ir::Base::Global(g) => Key::Addr(g.clone(), *off),
            crate::ir::Base::Slot(s) => Key::AddrSlot(s.0, *off),
            crate::ir::Base::Reg(_) => return None,
        },
        Inst::Load { w, base, off, .. } => Key::Load(*w, bk(base), *off, epoch),
        Inst::Cvt { kind, rs, .. } => Key::Cvt(*kind, vk(rs)),
        Inst::FBin { op, a, b, .. } => Key::FBin(*op, vk(a), vk(b)),
        _ => return None,
    })
}

/// Replaces jumps-to-trivial-jump blocks and removes empty forwarding.
fn fold_branches(f: &mut IrFunc) {
    // Compute the forwarding target of each block (a block that is empty
    // and ends in Jmp forwards to its target).
    let mut fwd: Vec<BlockId> = (0..f.blocks.len() as u32).map(BlockId).collect();
    for (i, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            if let Term::Jmp(t) = b.term {
                if t.0 as usize != i {
                    fwd[i] = t;
                }
            }
        }
    }
    // Resolve chains (bounded).
    let resolve = |mut b: BlockId, fwd: &[BlockId]| {
        for _ in 0..fwd.len() {
            let n = fwd[b.0 as usize];
            if n == b {
                break;
            }
            b = n;
        }
        b
    };
    for i in 0..f.blocks.len() {
        let term = f.blocks[i].term.clone();
        f.blocks[i].term = match term {
            Term::Jmp(t) => Term::Jmp(resolve(t, &fwd)),
            Term::Br { v, t, f: fb } => {
                let t2 = resolve(t, &fwd);
                let f2 = resolve(fb, &fwd);
                if t2 == f2 {
                    Term::Jmp(t2)
                } else {
                    Term::Br { v, t: t2, f: f2 }
                }
            }
            r => r,
        };
    }
}

/// Removes blocks unreachable from the entry (compacting ids).
fn remove_unreachable(f: &mut IrFunc) {
    let n = f.blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if reach[i] {
            continue;
        }
        reach[i] = true;
        for s in f.blocks[i].term.succs() {
            stack.push(s.0 as usize);
        }
    }
    if reach.iter().all(|r| *r) {
        return;
    }
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n {
        if reach[i] {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut f.blocks);
    for (i, b) in old.into_iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let mut b = b;
        b.term = match b.term {
            Term::Jmp(t) => Term::Jmp(BlockId(remap[t.0 as usize])),
            Term::Br { v, t, f: fb } => {
                Term::Br { v, t: BlockId(remap[t.0 as usize]), f: BlockId(remap[fb.0 as usize]) }
            }
            r => r,
        };
        f.blocks.push(b);
    }
}

/// Dead-code elimination over pure instructions.
fn dce(f: &mut IrFunc) {
    loop {
        let mut used = vec![false; f.vreg_count()];
        for b in &f.blocks {
            for i in &b.insts {
                for u in i.uses() {
                    used[u.0 as usize] = true;
                }
            }
            for u in b.term.uses() {
                used[u.0 as usize] = true;
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            b.insts.retain(|i| {
                let dead = i.is_pure() && i.def().map(|d| !used[d.0 as usize]).unwrap_or(false);
                if dead {
                    removed = true;
                }
                !dead
            });
        }
        if !removed {
            return;
        }
    }
}

/// Rewrites multiply/divide/remainder by constants into shifts and adds.
fn strength_reduce(f: &mut IrFunc) {
    for bi in 0..f.blocks.len() {
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len());
        for inst in insts {
            match inst {
                Inst::Bin { op: BinOp::Mul, rd, a, b: Operand::Imm(c) } => {
                    reduce_mul(f, &mut out, rd, a, c);
                }
                Inst::Bin { op: BinOp::UDiv, rd, a, b: Operand::Imm(c) }
                    if c > 0 && (c as u32).is_power_of_two() =>
                {
                    let k = (c as u32).trailing_zeros() as i32;
                    out.push(Inst::Bin { op: BinOp::Shr, rd, a, b: Operand::Imm(k) });
                }
                Inst::Bin { op: BinOp::URem, rd, a, b: Operand::Imm(c) }
                    if c > 0 && (c as u32).is_power_of_two() =>
                {
                    out.push(Inst::Bin { op: BinOp::And, rd, a, b: Operand::Imm(c - 1) });
                }
                Inst::Bin { op: BinOp::Div, rd, a, b: Operand::Imm(c) }
                    if c > 1 && (c as u32).is_power_of_two() =>
                {
                    emit_signed_div_pow2(f, &mut out, rd, a, c as u32);
                }
                Inst::Bin { op: BinOp::Rem, rd, a, b: Operand::Imm(c) }
                    if c > 1 && (c as u32).is_power_of_two() =>
                {
                    // a - (a / c) * c
                    let q = f.new_vreg(crate::ir::Class::Int);
                    emit_signed_div_pow2(f, &mut out, q, a, c as u32);
                    let m = f.new_vreg(crate::ir::Class::Int);
                    out.push(Inst::Bin {
                        op: BinOp::Shl,
                        rd: m,
                        a: q,
                        b: Operand::Imm((c as u32).trailing_zeros() as i32),
                    });
                    let neg = f.new_vreg(crate::ir::Class::Int);
                    out.push(Inst::Neg { rd: neg, rs: m });
                    out.push(Inst::Bin { op: BinOp::Add, rd, a, b: Operand::Reg(neg) });
                }
                other => out.push(other),
            }
        }
        f.blocks[bi].insts = out;
    }
}

fn reduce_mul(f: &mut IrFunc, out: &mut Vec<Inst>, rd: VReg, a: VReg, c: i32) {
    let uc = c.unsigned_abs();
    let negate = c < 0;
    let emit_core = |f: &mut IrFunc, out: &mut Vec<Inst>, dst: VReg| -> bool {
        if uc == 0 {
            out.push(Inst::MovI { rd: dst, v: 0 });
            true
        } else if uc.is_power_of_two() {
            out.push(Inst::Bin {
                op: BinOp::Shl,
                rd: dst,
                a,
                b: Operand::Imm(uc.trailing_zeros() as i32),
            });
            true
        } else if (uc - 1).is_power_of_two() {
            // (2^k + 1) * a = (a << k) + a
            let t = f.new_vreg(crate::ir::Class::Int);
            out.push(Inst::Bin {
                op: BinOp::Shl,
                rd: t,
                a,
                b: Operand::Imm((uc - 1).trailing_zeros() as i32),
            });
            out.push(Inst::Bin { op: BinOp::Add, rd: dst, a: t, b: Operand::Reg(a) });
            true
        } else if (uc + 1).is_power_of_two() {
            // (2^k - 1) * a = (a << k) - a
            let t = f.new_vreg(crate::ir::Class::Int);
            out.push(Inst::Bin {
                op: BinOp::Shl,
                rd: t,
                a,
                b: Operand::Imm((uc + 1).trailing_zeros() as i32),
            });
            let n = f.new_vreg(crate::ir::Class::Int);
            out.push(Inst::Neg { rd: n, rs: a });
            out.push(Inst::Bin { op: BinOp::Add, rd: dst, a: t, b: Operand::Reg(n) });
            true
        } else {
            false
        }
    };
    if negate {
        let t = f.new_vreg(crate::ir::Class::Int);
        if emit_core(f, out, t) {
            out.push(Inst::Neg { rd, rs: t });
        } else {
            out.push(Inst::Bin { op: BinOp::Mul, rd, a, b: Operand::Imm(c) });
        }
    } else if !emit_core(f, out, rd) {
        out.push(Inst::Bin { op: BinOp::Mul, rd, a, b: Operand::Imm(c) });
    }
}

/// `rd = a / 2^k` with C truncation-toward-zero semantics:
/// `rd = (a + ((a >> 31) >>> (32-k))) >> k`.
fn emit_signed_div_pow2(f: &mut IrFunc, out: &mut Vec<Inst>, rd: VReg, a: VReg, c: u32) {
    let k = c.trailing_zeros() as i32;
    let sign = f.new_vreg(crate::ir::Class::Int);
    out.push(Inst::Bin { op: BinOp::Sar, rd: sign, a, b: Operand::Imm(31) });
    let bias = f.new_vreg(crate::ir::Class::Int);
    out.push(Inst::Bin { op: BinOp::Shr, rd: bias, a: sign, b: Operand::Imm(32 - k) });
    let sum = f.new_vreg(crate::ir::Class::Int);
    out.push(Inst::Bin { op: BinOp::Add, rd: sum, a, b: Operand::Reg(bias) });
    out.push(Inst::Bin { op: BinOp::Sar, rd, a: sum, b: Operand::Imm(k) });
}

/// Converts remaining multiplies/divides into runtime-library calls.
fn legalize_muldiv(f: &mut IrFunc) {
    for bi in 0..f.blocks.len() {
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len());
        for inst in insts {
            match inst {
                Inst::Bin { op, rd, a, b }
                    if matches!(
                        op,
                        BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::UDiv | BinOp::URem
                    ) =>
                {
                    let func = match op {
                        BinOp::Mul => "__mulsi3",
                        BinOp::Div => "__divsi3",
                        BinOp::Rem => "__modsi3",
                        BinOp::UDiv => "__udivsi3",
                        _ => "__umodsi3",
                    };
                    let bv = match b {
                        Operand::Reg(r) => r,
                        Operand::Imm(i) => {
                            let t = f.new_vreg(crate::ir::Class::Int);
                            out.push(Inst::MovI { rd: t, v: i });
                            t
                        }
                    };
                    out.push(Inst::Call {
                        func: func.to_string(),
                        args: vec![a, bv],
                        ret: Some(rd),
                    });
                }
                other => out.push(other),
            }
        }
        f.blocks[bi].insts = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, Class};

    fn one_block_func(insts: Vec<Inst>, term: Term, nv: usize) -> IrFunc {
        IrFunc {
            name: "t".into(),
            params: vec![],
            ret_class: Some(Class::Int),
            blocks: vec![Block { insts, term }],
            vclass: vec![Class::Int; nv],
            slots: vec![],
        }
    }

    #[test]
    fn folds_constants_through_chain() {
        let v = |n| VReg(n);
        let mut f = one_block_func(
            vec![
                Inst::MovI { rd: v(0), v: 6 },
                Inst::MovI { rd: v(1), v: 7 },
                Inst::Bin { op: BinOp::Add, rd: v(2), a: v(0), b: Operand::Reg(v(1)) },
                Inst::Bin { op: BinOp::Shl, rd: v(3), a: v(2), b: Operand::Imm(1) },
            ],
            Term::Ret(Some(VReg(3))),
            4,
        );
        local_value_numbering(&mut f);
        dce(&mut f);
        // Everything folds to a single constant move of 26.
        assert!(f.blocks[0].insts.iter().any(|i| matches!(i, Inst::MovI { rd: VReg(3), v: 26 })));
        assert_eq!(f.blocks[0].insts.len(), 1, "{:?}", f.blocks[0].insts);
    }

    #[test]
    fn cse_reuses_pure_values_until_store() {
        let v = |n| VReg(n);
        let base = crate::ir::Base::Global("g".into());
        let mut f = one_block_func(
            vec![
                Inst::Load { w: d16_isa::MemWidth::W, rd: v(0), base: base.clone(), off: 0 },
                Inst::Load { w: d16_isa::MemWidth::W, rd: v(1), base: base.clone(), off: 0 },
                Inst::Store { w: d16_isa::MemWidth::W, rs: v(0), base: base.clone(), off: 4 },
                Inst::Load { w: d16_isa::MemWidth::W, rd: v(2), base, off: 0 },
                Inst::Bin { op: BinOp::Add, rd: v(3), a: v(1), b: Operand::Reg(v(2)) },
            ],
            Term::Ret(Some(VReg(3))),
            4,
        );
        local_value_numbering(&mut f);
        // Second load becomes a copy; third load (after the store) stays.
        assert!(matches!(f.blocks[0].insts[1], Inst::Mov { rd: VReg(1), rs: VReg(0) }));
        assert!(matches!(f.blocks[0].insts[3], Inst::Load { rd: VReg(2), .. }));
    }

    #[test]
    fn constant_branches_fold_and_unreachable_blocks_drop() {
        let v0 = VReg(0);
        let mut f = IrFunc {
            name: "t".into(),
            params: vec![],
            ret_class: Some(Class::Int),
            blocks: vec![
                Block {
                    insts: vec![Inst::MovI { rd: v0, v: 1 }],
                    term: Term::Br { v: v0, t: BlockId(1), f: BlockId(2) },
                },
                Block { insts: vec![], term: Term::Ret(Some(v0)) },
                Block { insts: vec![], term: Term::Ret(None) },
            ],
            vclass: vec![Class::Int],
            slots: vec![],
        };
        local_value_numbering(&mut f);
        remove_unreachable(&mut f);
        assert_eq!(f.blocks.len(), 2);
        assert!(matches!(f.blocks[0].term, Term::Jmp(BlockId(1))));
    }

    #[test]
    fn strength_reduction_shapes() {
        let v = |n| VReg(n);
        let mk = |op, c| {
            one_block_func(
                vec![Inst::Bin { op, rd: v(1), a: v(0), b: Operand::Imm(c) }],
                Term::Ret(Some(v(1))),
                2,
            )
        };
        let mut f = mk(BinOp::Mul, 8);
        strength_reduce(&mut f);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: BinOp::Shl, b: Operand::Imm(3), .. }
        ));

        let mut f = mk(BinOp::Mul, 10);
        strength_reduce(&mut f);
        legalize_muldiv(&mut f);
        assert!(
            f.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Call { func, .. } if func == "__mulsi3")),
            "non-pattern multiplies go to the runtime: {:?}",
            f.blocks[0].insts
        );

        let mut f = mk(BinOp::UDiv, 16);
        strength_reduce(&mut f);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: BinOp::Shr, b: Operand::Imm(4), .. }
        ));

        let mut f = mk(BinOp::Div, 4);
        strength_reduce(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 4, "signed divide correction sequence");
    }

    #[test]
    fn signed_div_pow2_semantics() {
        // Validate the shift sequence against Rust's truncating division.
        for a in [-1000i32, -17, -8, -1, 0, 1, 5, 8, 1000, i32::MIN + 1, i32::MAX] {
            for k in [1u32, 2, 3, 5] {
                let c = 1i32 << k;
                let sign = a >> 31;
                let bias = ((sign as u32) >> (32 - k)) as i32;
                let got = a.wrapping_add(bias) >> k;
                assert_eq!(got, a / c, "a={a} c={c}");
            }
        }
    }

    #[test]
    fn mul_by_nine_uses_shift_add() {
        let v = |n| VReg(n);
        let mut f = one_block_func(
            vec![Inst::Bin { op: BinOp::Mul, rd: v(1), a: v(0), b: Operand::Imm(9) }],
            Term::Ret(Some(v(1))),
            2,
        );
        strength_reduce(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2);
        // 9*a for a=7 is 63: shl 3 -> 56, +7.
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { op: BinOp::Shl, b: Operand::Imm(3), .. }
        ));
    }
}
