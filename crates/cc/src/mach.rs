//! Machine-level IR: target instructions over virtual (or physical)
//! registers, between instruction selection and register allocation.
//!
//! Integer registers and FP registers form separate namespaces. FP virtual
//! registers denote an even/odd *pair* (doubles need the pair; singles live
//! in the even half) so allocation is uniform.

use crate::ir::SlotId;
use d16_isa::{AluOp, Cond, CvtOp, FpCond, FpOp, Fpr, Gpr, MemWidth, Prec, TrapCode, UnOp};

/// An integer register reference.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum R {
    /// Physical.
    P(Gpr),
    /// Virtual.
    V(u32),
}

/// An FP register-pair reference.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FR {
    /// Physical pair base (even register).
    P(Fpr),
    /// Virtual pair.
    V(u32),
}

/// A memory operand.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MemAddr {
    /// `disp(base)`.
    BaseDisp {
        /// Base register.
        base: R,
        /// Byte displacement.
        disp: i32,
    },
    /// A function stack slot plus a byte offset (resolved to `disp(sp)`
    /// once the frame is laid out).
    SpSlot {
        /// The slot.
        slot: SlotId,
        /// Extra bytes within the slot.
        extra: i32,
    },
    /// Word `index` of the outgoing-argument area at the bottom of the
    /// frame.
    SpOut {
        /// Word index (byte offset / 4).
        index: u32,
    },
    /// Word `index` of the incoming-argument area in the caller's frame
    /// (resolved to `frame_size + 4*index` once the frame is laid out).
    SpIn {
        /// Word index.
        index: u32,
    },
}

/// One machine instruction (pre-allocation).
#[derive(Clone, PartialEq, Debug)]
#[allow(dead_code)] // Lui/Nop: constructible forms emission understands
pub enum MInsn {
    /// Three- or two-address ALU (selection already honors the target's
    /// address-count restriction, so `rd == rs1` when required).
    Alu { op: AluOp, rd: R, rs1: R, rs2: R },
    /// ALU with immediate (fits the effective encoding parameters).
    AluI { op: AluOp, rd: R, rs1: R, imm: i32 },
    /// Unary: `mv`, `neg`, `inv`.
    Un { op: UnOp, rd: R, rs: R },
    /// Move-immediate that fits the target's `mvi` field.
    Mvi { rd: R, imm: i32 },
    /// DLXe `mvhi` (selection currently prefers [`MInsn::LoadConst`], which
    /// expands to `mvhi`+`ori` at emission; kept for hand-built machine IR
    /// and future peepholes).
    Lui { rd: R, imm: u32 },
    /// Materialize an arbitrary 32-bit constant (D16: `ldc =imm`, one
    /// instruction plus a pool word; DLXe: `mvhi`+`ori`, two).
    LoadConst { rd: R, val: i32 },
    /// Materialize a symbol address plus offset.
    LoadSym { rd: R, sym: String, off: i32 },
    /// Integer compare. On D16 `rd` is always `P(r0)`.
    Cmp { cond: Cond, rd: R, rs1: R, rs2: R },
    /// Compare with immediate (DLXe, or the D16 `cmpeqi` extension).
    CmpI { cond: Cond, rd: R, rs1: R, imm: i32 },
    /// Integer load.
    Ld { w: MemWidth, rd: R, addr: MemAddr },
    /// Integer store.
    St { w: MemWidth, rs: R, addr: MemAddr },
    /// Address of a stack slot.
    SpAddr { rd: R, slot: SlotId, extra: i32 },
    /// FP arithmetic (two-address honored by selection for D16).
    FAlu { op: FpOp, prec: Prec, fd: FR, fs1: FR, fs2: FR },
    /// FP negate.
    FNeg { prec: Prec, fd: FR, fs: FR },
    /// FP compare into the status register.
    FCmp { cond: FpCond, prec: Prec, fs1: FR, fs2: FR },
    /// FP mode conversion.
    FCvt { op: CvtOp, fd: FR, fs: FR },
    /// FP register-pair copy (expands to `mff`/`mtf` through the integer
    /// scratch register after allocation).
    FMov { prec: Prec, fd: FR, fs: FR },
    /// GPR -> FPR half transfer. `hi` selects the odd half of the pair.
    Mtf { fd: FR, hi: bool, rs: R },
    /// FPR half -> GPR transfer.
    Mff { rd: R, fs: FR, hi: bool },
    /// Read the FP status register.
    Rdsr { rd: R },
    /// Direct call. `uses` are the argument registers live at the call;
    /// all caller-saved registers are clobbered.
    Call { sym: String, uses: Vec<R>, ret_fp: bool },
    /// System trap (reads/writes `r2` per code).
    Trap { code: TrapCode },
    /// Explicit no-op.
    Nop,
}

/// Block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum MTerm {
    /// Unconditional jump.
    Jmp(u32),
    /// Conditional branch on `rs` (D16: physically `r0`), then
    /// fall-through to `f`.
    Bc {
        /// `bnz` when true, `bz` when false.
        neg: bool,
        /// Tested register.
        rs: R,
        /// Taken target block.
        t: u32,
        /// Fall-through block.
        f: u32,
    },
    /// Function return (the return-value registers were set up by
    /// selection).
    Ret,
}

impl MTerm {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<u32> {
        match self {
            MTerm::Jmp(b) => vec![*b],
            MTerm::Bc { t, f, .. } => vec![*t, *f],
            MTerm::Ret => vec![],
        }
    }
}

/// A machine basic block.
#[derive(Clone, Debug)]
pub struct MBlock {
    /// Instructions.
    pub insts: Vec<MInsn>,
    /// Terminator.
    pub term: MTerm,
}

/// A function in machine IR.
#[derive(Clone, Debug)]
pub struct MFunc {
    /// Name.
    pub name: String,
    /// Blocks (entry = 0).
    pub blocks: Vec<MBlock>,
    /// Number of integer virtuals.
    pub nvirt_int: u32,
    /// Number of FP-pair virtuals.
    pub nvirt_fp: u32,
    /// Precision of each FP virtual (spill width).
    pub fp_prec: Vec<Prec>,
    /// Stack slots (lowered locals plus allocator spills).
    pub slots: Vec<crate::ir::SlotInfo>,
    /// Words needed in the outgoing-argument area.
    pub out_words: u32,
    /// Whether the function contains calls (forces saving the link
    /// register).
    pub has_call: bool,
    /// Whether the function returns a value in `r2` (and `r3` for
    /// doubles): keeps the return registers live at `Ret`.
    pub ret_words: u32,
}

impl MFunc {
    /// Fresh integer virtual.
    pub fn vint(&mut self) -> R {
        self.nvirt_int += 1;
        R::V(self.nvirt_int - 1)
    }

    /// Fresh FP-pair virtual.
    pub fn vfp(&mut self, prec: Prec) -> FR {
        self.fp_prec.push(prec);
        self.nvirt_fp += 1;
        FR::V(self.nvirt_fp - 1)
    }

    /// Adds a spill slot and returns it.
    pub fn spill_slot(&mut self, size: u32) -> SlotId {
        self.slots.push(crate::ir::SlotInfo { size, align: size.min(8) });
        SlotId(self.slots.len() as u32 - 1)
    }
}

/// Register-reference collections for liveness: integer defs/uses and FP
/// defs/uses of one instruction.
#[derive(Clone, Default, Debug)]
pub struct DefUse {
    /// Integer registers written.
    pub idefs: Vec<R>,
    /// Integer registers read.
    pub iuses: Vec<R>,
    /// FP pairs written.
    pub fdefs: Vec<FR>,
    /// FP pairs read.
    pub fuses: Vec<FR>,
}

impl MInsn {
    /// Defs and uses, given the caller-saved sets for call clobbers.
    pub fn def_use(&self, caller_saved: &[Gpr], fp_caller_saved: &[Fpr]) -> DefUse {
        let mut du = DefUse::default();
        match self {
            MInsn::Alu { rd, rs1, rs2, .. } => {
                du.idefs.push(*rd);
                du.iuses.push(*rs1);
                du.iuses.push(*rs2);
            }
            MInsn::AluI { rd, rs1, .. } => {
                du.idefs.push(*rd);
                du.iuses.push(*rs1);
            }
            MInsn::Un { rd, rs, .. } => {
                du.idefs.push(*rd);
                du.iuses.push(*rs);
            }
            MInsn::Mvi { rd, .. }
            | MInsn::Lui { rd, .. }
            | MInsn::LoadConst { rd, .. }
            | MInsn::LoadSym { rd, .. }
            | MInsn::Rdsr { rd } => du.idefs.push(*rd),
            MInsn::Cmp { rd, rs1, rs2, .. } => {
                du.idefs.push(*rd);
                du.iuses.push(*rs1);
                du.iuses.push(*rs2);
            }
            MInsn::CmpI { rd, rs1, .. } => {
                du.idefs.push(*rd);
                du.iuses.push(*rs1);
            }
            MInsn::Ld { rd, addr, .. } => {
                du.idefs.push(*rd);
                addr_uses(addr, &mut du.iuses);
            }
            MInsn::St { rs, addr, .. } => {
                du.iuses.push(*rs);
                addr_uses(addr, &mut du.iuses);
            }
            MInsn::SpAddr { rd, .. } => du.idefs.push(*rd),
            MInsn::FAlu { fd, fs1, fs2, .. } => {
                du.fdefs.push(*fd);
                du.fuses.push(*fs1);
                du.fuses.push(*fs2);
            }
            MInsn::FNeg { fd, fs, .. }
            | MInsn::FCvt { fd, fs, .. }
            | MInsn::FMov { fd, fs, .. } => {
                du.fdefs.push(*fd);
                du.fuses.push(*fs);
            }
            MInsn::FCmp { fs1, fs2, .. } => {
                du.fuses.push(*fs1);
                du.fuses.push(*fs2);
            }
            MInsn::Mtf { fd, hi, rs } => {
                // Pairs are always built low half first, so the low-half
                // transfer is a pure definition; the high-half transfer
                // read-modifies the pair.
                du.fdefs.push(*fd);
                if *hi {
                    du.fuses.push(*fd);
                }
                du.iuses.push(*rs);
            }
            MInsn::Mff { rd, fs, .. } => {
                du.idefs.push(*rd);
                du.fuses.push(*fs);
            }
            MInsn::Call { uses, .. } => {
                du.iuses.extend(uses.iter().copied());
                du.idefs.extend(caller_saved.iter().map(|g| R::P(*g)));
                du.fdefs.extend(fp_caller_saved.iter().map(|f| FR::P(*f)));
            }
            MInsn::Trap { code } => match code {
                TrapCode::ReadInsnCount => {
                    du.idefs.push(R::P(d16_isa::abi::RET));
                }
                _ => du.iuses.push(R::P(d16_isa::abi::RET)),
            },
            MInsn::Nop => {}
        }
        du
    }
}

fn addr_uses(addr: &MemAddr, uses: &mut Vec<R>) {
    if let MemAddr::BaseDisp { base, .. } = addr {
        uses.push(*base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_shapes() {
        let i = MInsn::Alu { op: AluOp::Add, rd: R::V(1), rs1: R::V(2), rs2: R::P(Gpr::new(5)) };
        let du = i.def_use(&[], &[]);
        assert_eq!(du.idefs, vec![R::V(1)]);
        assert_eq!(du.iuses, vec![R::V(2), R::P(Gpr::new(5))]);

        let call = MInsn::Call { sym: "f".into(), uses: vec![R::P(Gpr::new(2))], ret_fp: false };
        let du = call.def_use(&[Gpr::new(2), Gpr::new(3)], &[Fpr::new(0)]);
        assert_eq!(du.idefs.len(), 2);
        assert_eq!(du.fdefs, vec![FR::P(Fpr::new(0))]);
    }

    #[test]
    fn mtf_reads_and_writes_pair() {
        let i = MInsn::Mtf { fd: FR::V(3), hi: true, rs: R::V(1) };
        let du = i.def_use(&[], &[]);
        assert!(du.fdefs.contains(&FR::V(3)));
        assert!(du.fuses.contains(&FR::V(3)));
    }

    #[test]
    fn term_succs() {
        assert_eq!(MTerm::Jmp(3).succs(), vec![3]);
        assert_eq!(MTerm::Bc { neg: false, rs: R::V(0), t: 1, f: 2 }.succs(), vec![1, 2]);
        assert!(MTerm::Ret.succs().is_empty());
    }
}
