//! Target descriptions: ISA choice plus the paper's §3.3 ablation knobs.
//!
//! The experiments restrict the DLXe code generator feature by feature "to
//! determine which instruction set features provide the most return": a
//! 16-register file, two-address instructions, and D16-sized immediate
//! fields. Each knob here changes only code generation; the emitted binary
//! still uses the target's real encoding.

use d16_isa::{abi, EncodingParams, Fpr, Gpr, Isa};

/// A code-generation target: an ISA plus optional restrictions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TargetSpec {
    /// Which encoding to emit.
    pub isa: Isa,
    /// Restrict the allocator to the low 16 GPRs/FPRs (the paper's
    /// "DLXe/16" configurations). Implied for D16.
    pub small_regfile: bool,
    /// Force two-address ALU shapes (implied for D16).
    pub two_address: bool,
    /// Restrict immediates and displacements to the D16 field sizes
    /// (used with the other two knobs to "approximate D16 performance
    /// with the immediate-operand instructions ... of DLXe" inverted).
    pub d16_immediates: bool,
    /// Enable the D16 `cmpeqi` extension discussed in §3.3.3.
    pub cmpeqi: bool,
    /// Fill branch delay slots by scheduling (on by default; off for the
    /// ablation bench).
    pub schedule_delay_slots: bool,
}

impl TargetSpec {
    /// The D16 machine.
    pub fn d16() -> Self {
        TargetSpec {
            isa: Isa::D16,
            small_regfile: true,
            two_address: true,
            d16_immediates: true,
            cmpeqi: false,
            schedule_delay_slots: true,
        }
    }

    /// The D16x machine: D16's register file and branch discipline with
    /// the 32-bit escape formats supplying three-address shapes and 16-bit
    /// immediates, so code generation follows the DLXe shapes (hi/lo
    /// materialization, direct calls) while keeping the 16-register file.
    pub fn d16x() -> Self {
        TargetSpec {
            isa: Isa::D16x,
            small_regfile: true,
            two_address: false,
            d16_immediates: false,
            cmpeqi: false,
            schedule_delay_slots: true,
        }
    }

    /// The unrestricted DLXe machine.
    pub fn dlxe() -> Self {
        TargetSpec {
            isa: Isa::Dlxe,
            small_regfile: false,
            two_address: false,
            d16_immediates: false,
            cmpeqi: false,
            schedule_delay_slots: true,
        }
    }

    /// A restricted DLXe configuration (the ablation grid of Figures
    /// 6–12): `regs16` = 16-register file, `two_addr` = two-address
    /// shapes, `d16_imm` = D16 immediate fields.
    pub fn dlxe_restricted(regs16: bool, two_addr: bool, d16_imm: bool) -> Self {
        TargetSpec {
            isa: Isa::Dlxe,
            small_regfile: regs16,
            two_address: two_addr,
            d16_immediates: d16_imm,
            cmpeqi: false,
            schedule_delay_slots: true,
        }
    }

    /// Short display name used in tables, e.g. `DLXe/16/2`.
    pub fn label(&self) -> String {
        let regs = if self.small_regfile { 16 } else { 32 };
        let ops = if self.two_address { 2 } else { 3 };
        format!("{}/{}/{}", self.isa.name(), regs, ops)
    }

    /// Every code-generation knob as a stable string, for cache-key
    /// derivation. Unlike [`TargetSpec::label`] this covers *all* fields —
    /// two specs with equal knob tags generate identical code, so a
    /// `d16-store` entry keyed on it can be served for either.
    pub fn knob_tag(&self) -> String {
        format!(
            "isa={};regs16={};two_addr={};d16_imm={};cmpeqi={};sched_ds={}",
            self.isa.name(),
            self.small_regfile,
            self.two_address,
            self.d16_immediates,
            self.cmpeqi,
            self.schedule_delay_slots,
        )
    }

    /// Effective encoding limits for instruction selection: the real ISA's
    /// limits, further clamped when `d16_immediates` is set.
    pub fn params(&self) -> EncodingParams {
        let mut p = EncodingParams::for_isa(self.isa);
        if self.d16_immediates {
            let d = EncodingParams::for_isa(Isa::D16);
            p.alu_imm = d.alu_imm;
            p.mvi_imm = d.mvi_imm;
            p.mem_disp = d.mem_disp;
            p.subword_disp = d.subword_disp;
            p.cmp_imm = self.cmpeqi;
            p.logical_imm = false;
            // `mvhi` stays available on DLXe: it is a format property, not
            // an immediate-width property, and D16 code pays through `ldc`
            // instead. The knob models field *width*.
            p.has_lui = p.isa == Isa::Dlxe;
        } else if self.cmpeqi {
            p.cmp_imm = true;
        }
        p
    }

    /// The scratch register reserved for the code generator (D16 uses the
    /// compare register `r0`; DLXe reserves `r1`).
    pub fn scratch(&self) -> Gpr {
        match self.isa {
            // D16x keeps the D16 compare/branch discipline, so `r0` stays
            // the reserved compare-and-scratch register.
            Isa::D16 | Isa::D16x => abi::R0,
            Isa::Dlxe => Gpr::new(1),
        }
    }

    /// Allocatable integer registers, in preference order (caller-saved
    /// first so short-lived values avoid save/restore cost).
    pub fn int_regs(&self) -> Vec<Gpr> {
        let mut v: Vec<Gpr> = (2..=9).map(Gpr::new).collect(); // caller-saved
        v.extend([10, 11, 12, 14].map(Gpr::new)); // callee-saved
        if !self.small_regfile {
            v.extend((16..=30).map(Gpr::new)); // callee-saved, wide file
        }
        v
    }

    /// Caller-saved integer registers (clobbered by calls).
    pub fn caller_saved(&self) -> Vec<Gpr> {
        let mut v: Vec<Gpr> = (2..=9).map(Gpr::new).collect();
        if self.isa == Isa::Dlxe {
            v.push(abi::DLXE_LINK);
        } else {
            v.push(abi::D16_LINK);
        }
        v
    }

    /// Callee-saved integer registers.
    pub fn callee_saved(&self) -> Vec<Gpr> {
        let mut v: Vec<Gpr> = [10, 11, 12, 14].map(Gpr::new).to_vec();
        if !self.small_regfile {
            v.extend((16..=30).map(Gpr::new));
        }
        v
    }

    /// Allocatable FP pair bases (doubles and singles both occupy an
    /// even/odd pair; see DESIGN.md).
    pub fn fp_pairs(&self) -> Vec<Fpr> {
        let hi = if self.small_regfile { 14 } else { 30 };
        (0..=hi).step_by(2).map(Fpr::new).collect()
    }

    /// Caller-saved FP pair bases.
    pub fn fp_caller_saved(&self) -> Vec<Fpr> {
        let hi = if self.small_regfile { 10 } else { 14 };
        (0..=hi).step_by(2).map(Fpr::new).collect()
    }

    /// Callee-saved FP pair bases.
    pub fn fp_callee_saved(&self) -> Vec<Fpr> {
        let (lo, hi) = if self.small_regfile { (12, 14) } else { (16, 30) };
        (lo..=hi).step_by(2).map(Fpr::new).collect()
    }

    /// Integer argument registers (`r2..r5`; doubles take two).
    pub fn arg_regs(&self) -> [Gpr; 4] {
        abi::ARGS
    }

    /// The link register.
    pub fn link_reg(&self) -> Gpr {
        self.isa.link_reg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(TargetSpec::d16().label(), "D16/16/2");
        assert_eq!(TargetSpec::dlxe().label(), "DLXe/32/3");
        assert_eq!(TargetSpec::d16x().label(), "D16x/16/3");
        assert_eq!(TargetSpec::dlxe_restricted(true, true, false).label(), "DLXe/16/2");
    }

    #[test]
    fn knob_tags_separate_every_field() {
        // `label()` collapses cmpeqi and delay-slot scheduling; the knob
        // tag must not, or the store would serve stale code across them.
        let base = TargetSpec::dlxe_restricted(true, true, false);
        let mut cmpeqi = base.clone();
        cmpeqi.cmpeqi = true;
        let mut nosched = base.clone();
        nosched.schedule_delay_slots = false;
        assert_eq!(base.label(), cmpeqi.label());
        assert_ne!(base.knob_tag(), cmpeqi.knob_tag());
        assert_ne!(base.knob_tag(), nosched.knob_tag());
        assert_eq!(base.knob_tag(), base.clone().knob_tag());
    }

    #[test]
    fn register_sets_are_disjoint_and_sized() {
        let d16 = TargetSpec::d16();
        let ints = d16.int_regs();
        assert_eq!(ints.len(), 12);
        assert!(!ints.contains(&abi::R0), "r0 is the D16 scratch");
        assert!(!ints.contains(&abi::D16_LINK));
        assert!(!ints.contains(&abi::GP));
        assert!(!ints.contains(&abi::SP));
        assert!(ints.iter().all(|r| r.fits_d16()));

        let dlxe = TargetSpec::dlxe();
        assert_eq!(dlxe.int_regs().len(), 27);
        assert!(!dlxe.int_regs().contains(&Gpr::new(1)), "r1 is the DLXe scratch");
        assert!(!dlxe.int_regs().contains(&Gpr::new(31)));

        let restricted = TargetSpec::dlxe_restricted(true, true, true);
        assert_eq!(restricted.int_regs().len(), 12, "same window as D16");
    }

    #[test]
    fn restricted_params_match_d16_limits() {
        let p = TargetSpec::dlxe_restricted(true, true, true).params();
        assert_eq!(p.alu_imm, (0, 31));
        assert_eq!(p.mvi_imm, (-256, 255));
        assert_eq!(p.mem_disp, (0, 124));
        assert!(!p.cmp_imm);
        assert!(!p.logical_imm);
        let full = TargetSpec::dlxe().params();
        assert_eq!(full.mem_disp, (-32768, 32767));
        assert!(full.cmp_imm);
    }

    #[test]
    fn fp_pairs_are_even() {
        for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
            assert!(spec.fp_pairs().iter().all(|f| f.is_even()));
        }
        assert_eq!(TargetSpec::d16().fp_pairs().len(), 8);
        assert_eq!(TargetSpec::dlxe().fp_pairs().len(), 16);
    }
}
