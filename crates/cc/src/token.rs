//! Lexer for Mini-C, the compiler's C subset.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Integer literal (value fits in 64 bits; range-checked later).
    Int(i64),
    /// Floating literal; `is_f32` when suffixed with `f`.
    Float(f64, bool),
    /// Character literal (its value).
    Char(u8),
    /// String literal bytes (unterminated).
    Str(Vec<u8>),
    /// Punctuation / operator.
    P(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v, _) => write!(f, "float {v}"),
            Tok::Char(c) => write!(f, "char literal {c}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::P(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Mini-C keywords.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Int,
    Char,
    Float,
    Double,
    Unsigned,
    Void,
    Struct,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Sizeof,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "int" => Kw::Int,
        "char" => Kw::Char,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "unsigned" => Kw::Unsigned,
        "void" => Kw::Void,
        "struct" => Kw::Struct,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "sizeof" => Kw::Sizeof,
        _ => return None,
    })
}

/// A token plus its source line (for diagnostics).
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// A compile error with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct CError {
    /// 1-based source line (0 when not attributable).
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CError {}

/// Turns source text into tokens (comments: `//` and `/* */`).
///
/// # Errors
///
/// Reports unterminated literals/comments and stray characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let err = |line: usize, msg: String| CError { line, msg };

    macro_rules! push {
        ($t:expr) => {
            toks.push(Spanned { tok: $t, line })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(line, "unterminated comment".into()));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = u64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|e| err(line, format!("bad hex literal: {e}")))?;
                    if i < b.len() && (b[i] | 32) == b'u' {
                        i += 1;
                    }
                    push!(Tok::Int(v as i64));
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    if i < b.len()
                        && b[i] == b'.'
                        && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if i < b.len() && (b[i] | 32) == b'e' {
                        is_float = true;
                        i += 1;
                        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                            i += 1;
                        }
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if is_float {
                        let v: f64 = src[start..i]
                            .parse()
                            .map_err(|e| err(line, format!("bad float literal: {e}")))?;
                        let f32suf = i < b.len() && (b[i] | 32) == b'f';
                        if f32suf {
                            i += 1;
                        }
                        push!(Tok::Float(v, f32suf));
                    } else {
                        let v: i64 = src[start..i]
                            .parse()
                            .map_err(|e| err(line, format!("bad integer literal: {e}")))?;
                        if i < b.len() && (b[i] | 32) == b'u' {
                            i += 1; // unsigned suffix: value is what matters
                        }
                        push!(Tok::Int(v));
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let s = &src[start..i];
                match keyword(s) {
                    Some(k) => push!(Tok::Kw(k)),
                    None => push!(Tok::Ident(s.to_string())),
                }
            }
            b'\'' => {
                i += 1;
                let v = if b.get(i) == Some(&b'\\') {
                    i += 1;
                    let v = escape(*b.get(i).ok_or_else(|| err(line, "bad escape".into()))?)
                        .ok_or_else(|| err(line, "bad escape".into()))?;
                    i += 1;
                    v
                } else {
                    let v = *b.get(i).ok_or_else(|| err(line, "bad char literal".into()))?;
                    i += 1;
                    v
                };
                if b.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal".into()));
                }
                i += 1;
                push!(Tok::Char(v));
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match b.get(i) {
                        None | Some(b'\n') => return Err(err(line, "unterminated string".into())),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            let v =
                                escape(*b.get(i).ok_or_else(|| err(line, "bad escape".into()))?)
                                    .ok_or_else(|| err(line, "bad escape".into()))?;
                            s.push(v);
                            i += 1;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            _ => {
                // Multi-char operators, longest first.
                const OPS: [&str; 35] = [
                    "<<=", ">>=", "...", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=",
                    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "++", "--", "+", "-", "*", "/",
                    "%", "&", "|", "^", "~", "!", "<", ">", "=",
                ];
                const SINGLE: &[u8] = b"(){}[];,.?:";
                let rest = &src[i..];
                if let Some(op) = OPS.iter().find(|op| rest.starts_with(**op)) {
                    push!(Tok::P(op));
                    i += op.len();
                } else if SINGLE.contains(&c) {
                    let s: &'static str = match c {
                        b'(' => "(",
                        b')' => ")",
                        b'{' => "{",
                        b'}' => "}",
                        b'[' => "[",
                        b']' => "]",
                        b';' => ";",
                        b',' => ",",
                        b'.' => ".",
                        b'?' => "?",
                        b':' => ":",
                        _ => unreachable!(),
                    };
                    push!(Tok::P(s));
                    i += 1;
                } else {
                    return Err(err(line, format!("unexpected character `{}`", c as char)));
                }
            }
        }
    }
    toks.push(Spanned { tok: Tok::Eof, line });
    Ok(toks)
}

fn escape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        let t = kinds("int x = 42;");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("x".into()),
                Tok::P("="),
                Tok::Int(42),
                Tok::P(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        let t = kinds("a <<= b >> c >= d");
        assert_eq!(t[1], Tok::P("<<="));
        assert_eq!(t[3], Tok::P(">>"));
        assert_eq!(t[5], Tok::P(">="));
    }

    #[test]
    fn lexes_literals() {
        let t = kinds("0x1F 3.5 2e3 1.5f 'a' '\\n' \"hi\\0\"");
        assert_eq!(t[0], Tok::Int(31));
        assert_eq!(t[1], Tok::Float(3.5, false));
        assert_eq!(t[2], Tok::Float(2000.0, false));
        assert_eq!(t[3], Tok::Float(1.5, true));
        assert_eq!(t[4], Tok::Char(b'a'));
        assert_eq!(t[5], Tok::Char(b'\n'));
        assert_eq!(t[6], Tok::Str(b"hi\0".to_vec()));
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("int a; // one\n/* two\nthree */ int b;").unwrap();
        let b = toks.iter().find(|s| s.tok == Tok::Ident("b".into())).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("int a;\n@").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
    }
}
