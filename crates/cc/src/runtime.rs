//! The Mini-C runtime library.
//!
//! Neither D16 nor DLXe has integer multiply or divide instructions (the
//! paper's Table 1 lists only ALU, shift, memory and FP operations), so
//! the compiler lowers `* / %` to these helpers, compiled per target with
//! everything else — the same "level playing field" methodology the paper
//! uses. Division by zero returns zero, matching the compiler's
//! constant-folding semantics so differential tests agree everywhere.

/// Runtime support source, compiled after the user program (its globals
/// sit past the user's in the data layout).
pub const RUNTIME_C: &str = r#"
/* d16-cc runtime support */

int __mulsi3(int a, int b) {
    unsigned ua = (unsigned)a;
    unsigned ub = (unsigned)b;
    unsigned r = 0;
    while (ub) {
        if (ub & 1) r = r + ua;
        ua = ua << 1;
        ub = ub >> 1;
    }
    return (int)r;
}

unsigned __udivmodsi4(unsigned n, unsigned d, int want_rem) {
    unsigned q = 0;
    unsigned r = 0;
    int i = 31;
    if (d == 0) return 0;
    while (i >= 0) {
        r = (r << 1) | ((n >> i) & 1);
        q = q << 1;
        if (r >= d) {
            r = r - d;
            q = q | 1;
        }
        i = i - 1;
    }
    if (want_rem) return r;
    return q;
}

unsigned __udivsi3(unsigned a, unsigned b) {
    return __udivmodsi4(a, b, 0);
}

unsigned __umodsi3(unsigned a, unsigned b) {
    return __udivmodsi4(a, b, 1);
}

int __divsi3(int a, int b) {
    int neg = 0;
    unsigned ua;
    unsigned ub;
    unsigned q;
    if (b == 0) return 0;
    if (a < 0) { ua = (unsigned)(-a); neg = 1 - neg; } else { ua = (unsigned)a; }
    if (b < 0) { ub = (unsigned)(-b); neg = 1 - neg; } else { ub = (unsigned)b; }
    q = __udivmodsi4(ua, ub, 0);
    if (neg) return -(int)q;
    return (int)q;
}

int __modsi3(int a, int b) {
    int q;
    if (b == 0) return 0;
    q = __divsi3(a, b);
    return a - q * b;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn runtime_parses() {
        let p = parse(RUNTIME_C).expect("runtime must parse");
        let names: Vec<_> = p.funcs.iter().map(|f| f.name.as_str()).collect();
        for required in
            ["__mulsi3", "__divsi3", "__modsi3", "__udivsi3", "__umodsi3", "__udivmodsi4"]
        {
            assert!(names.contains(&required), "missing {required}");
        }
    }
}
