//! # d16-cc — a retargetable optimizing Mini-C compiler
//!
//! Plays the role GCC 2.1 plays in the paper: one compiler technology,
//! "basing both \[targets\] on the same technology helps ensure a level
//! playing field", with "the minor differences between the instruction
//! sets ... handled by code generation parameters" — here, a
//! [`TargetSpec`].
//!
//! The pipeline: lex → parse → lower (type check, IR) → optimize
//! (constant folding, copy propagation, local CSE, branch folding, DCE,
//! strength reduction) → select (target feature restrictions applied) →
//! color registers (graph coloring with spilling) → emit (frames, delay
//! slots, literal pools).
//!
//! ```
//! use d16_cc::{compile_to_asm, TargetSpec};
//!
//! let asm = compile_to_asm(
//!     &["int main(void) { return 6 * 7; }"],
//!     &TargetSpec::d16(),
//! )?;
//! assert!(asm.contains("main:"));
//! # Ok::<(), d16_cc::BuildError>(())
//! ```

mod ast;
mod emit;
mod ir;
mod isel;
mod lower;
mod mach;
mod opt;
mod parser;
mod regalloc;
mod runtime;
mod target;
mod token;

pub use ast::{Program, Ty};
pub use parser::{parse, parse_into};
pub use regalloc::RegAllocError;
pub use runtime::RUNTIME_C;
pub use target::TargetSpec;
pub use token::CError;

use d16_asm::{AsmError, Image};
use d16_store::{CacheKey, StableHasher, Store};

/// Version tag folded into every [`build_key`]. Bump whenever the
/// compiler changes observable output for any input, so stale
/// `d16-store` entries from older toolchains stop matching.
pub const TOOLCHAIN_TAG: &str = "d16-cc/2";

/// How much of the optimizer pipeline to run.
///
/// Differential testing compiles every program at both levels: a
/// miscompile in an optimization pass shows up as an `O0`/`O2`
/// disagreement, while a bug in lowering, selection, allocation or
/// emission shows up at both levels against the reference interpreter.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum OptLevel {
    /// Legalization only (multiply/divide become runtime calls — neither
    /// ISA has the instructions, so this much is mandatory); no folding,
    /// CSE, branch folding, DCE or strength reduction.
    O0,
    /// The full optimization pipeline.
    #[default]
    O2,
}

/// Compiles Mini-C sources (plus the runtime library) to one assembly
/// unit for the given target, at the default [`OptLevel::O2`].
///
/// Sources share one global namespace; user sources come first so their
/// globals occupy the start of the data segment (the D16 gp window).
///
/// # Errors
///
/// Returns the first lexical, syntax, or type error as
/// [`BuildError::Compile`]; a register allocation that fails to converge
/// (a compiler bug, or the `regalloc-diverge` failpoint) surfaces as
/// [`BuildError::RegAlloc`] instead of a panic.
pub fn compile_to_asm(sources: &[&str], spec: &TargetSpec) -> Result<String, BuildError> {
    compile_to_asm_with(sources, spec, OptLevel::O2)
}

/// [`compile_to_asm`] with an explicit [`OptLevel`].
///
/// # Errors
///
/// Same as [`compile_to_asm`].
pub fn compile_to_asm_with(
    sources: &[&str],
    spec: &TargetSpec,
    opt: OptLevel,
) -> Result<String, BuildError> {
    let mut prog = Program::default();
    for src in sources {
        parser::parse_into(&mut prog, src).map_err(BuildError::Compile)?;
    }
    parser::parse_into(&mut prog, RUNTIME_C).map_err(BuildError::Compile)?;
    if prog.func("main").is_none() {
        return Err(BuildError::Compile(CError { line: 0, msg: "no `main` function".into() }));
    }
    let debug = std::env::var_os("D16CC_DEBUG").is_some();
    let mut module = lower::lower(&prog).map_err(BuildError::Compile)?;
    if debug {
        eprintln!("[d16cc] lowered {} functions", module.funcs.len());
    }
    match opt {
        OptLevel::O0 => opt::legalize_only(&mut module),
        OptLevel::O2 => opt::optimize(&mut module),
    }
    if debug {
        eprintln!("[d16cc] optimized");
    }
    let selected = isel::select(&module, spec);
    if debug {
        eprintln!("[d16cc] selected");
    }
    let mut funcs = Vec::with_capacity(selected.funcs.len());
    for mut mf in selected.funcs {
        if debug {
            eprintln!("[d16cc] allocating {}", mf.name);
        }
        let info = regalloc::allocate(&mut mf, spec).map_err(BuildError::RegAlloc)?;
        funcs.push((mf, info));
    }
    if debug {
        eprintln!("[d16cc] emitting");
    }
    Ok(emit::emit_unit(spec, &funcs, &selected.data, &selected.bss))
}

/// Errors from the full compile-assemble-link pipeline.
#[derive(Debug)]
pub enum BuildError {
    /// Compiler diagnostics.
    Compile(CError),
    /// Register allocation failed to converge.
    RegAlloc(RegAllocError),
    /// Assembler or linker diagnostics (with the offending assembly kept
    /// for debugging).
    Assemble(AsmError, String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::RegAlloc(e) => write!(f, "register allocation error: {e}"),
            BuildError::Assemble(e, _) => write!(f, "assemble error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Compile(e) => Some(e),
            BuildError::RegAlloc(e) => Some(e),
            BuildError::Assemble(e, _) => Some(e),
        }
    }
}

/// Compiles, assembles and links sources into a loadable image.
///
/// # Errors
///
/// Returns a [`BuildError`] wrapping the failing stage's diagnostic.
pub fn compile_to_image(sources: &[&str], spec: &TargetSpec) -> Result<Image, BuildError> {
    compile_to_image_with(sources, spec, OptLevel::O2)
}

/// [`compile_to_image`] with an explicit [`OptLevel`].
///
/// # Errors
///
/// Returns a [`BuildError`] wrapping the failing stage's diagnostic.
pub fn compile_to_image_with(
    sources: &[&str],
    spec: &TargetSpec,
    opt: OptLevel,
) -> Result<Image, BuildError> {
    let asm = compile_to_asm_with(sources, spec, opt)?;
    d16_asm::build(spec.isa, &[&asm]).map_err(|e| BuildError::Assemble(e, asm))
}

/// Content key for the image [`compile_to_image`] would produce: a stable
/// hash of both toolchain tags, every [`TargetSpec`] knob, the runtime
/// library, and every source in order. Equal keys mean byte-identical
/// images.
#[must_use]
pub fn build_key(sources: &[&str], spec: &TargetSpec) -> CacheKey {
    let mut h = StableHasher::new("d16-cc.build");
    h.field_str(TOOLCHAIN_TAG)
        .field_str(d16_asm::TOOLCHAIN_TAG)
        .field_str(&spec.knob_tag())
        .field_str(RUNTIME_C)
        .field_u64(sources.len() as u64);
    for src in sources {
        h.field_str(src);
    }
    h.finish()
}

/// Store kind under which linked images are filed (shared with the
/// `d16-core` measurement layer, which needs images for trace decoding).
pub const IMAGE_KIND: &str = "image";

/// [`compile_to_image`] through a `d16-store`: serves the linked image
/// from `store` when an intact entry exists for [`build_key`], otherwise
/// compiles and commits the result. With `store` `None` this is exactly
/// `compile_to_image`.
///
/// # Errors
///
/// Same as [`compile_to_image`]; store failures never surface (a damaged
/// or unwritable store degrades to recompilation).
pub fn compile_to_image_stored(
    sources: &[&str],
    spec: &TargetSpec,
    store: Option<&Store>,
) -> Result<Image, BuildError> {
    let Some(store) = store else {
        return compile_to_image(sources, spec);
    };
    let key = build_key(sources, spec);
    if let Some(img) = store.get_with(IMAGE_KIND, key, d16_asm::codec::decode_image) {
        return Ok(img);
    }
    let img = compile_to_image(sources, spec)?;
    store.put(IMAGE_KIND, key, &d16_asm::codec::encode_image(&img));
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d16_sim::{Machine, NullSink, StopReason};

    /// Compiles and runs a program on every standard target, checking the
    /// exit status matches on all of them.
    #[track_caller]
    fn run_all(src: &str, expect: i32) {
        for spec in [
            TargetSpec::d16(),
            TargetSpec::dlxe(),
            TargetSpec::dlxe_restricted(true, true, true),
            TargetSpec::dlxe_restricted(true, false, false),
        ] {
            let image = match compile_to_image(&[src], &spec) {
                Ok(i) => i,
                Err(BuildError::Assemble(e, asm)) => {
                    panic!("[{}] assemble: {e}\n{asm}", spec.label())
                }
                Err(e) => panic!("[{}] {e}", spec.label()),
            };
            let mut m = Machine::load(&image);
            match m.run(200_000_000, &mut NullSink) {
                Ok(StopReason::Halted(v)) => {
                    assert_eq!(v, expect, "[{}] exit status", spec.label())
                }
                Ok(StopReason::OutOfFuel) => panic!("[{}] ran out of fuel", spec.label()),
                Err(e) => panic!("[{}] sim error: {e} at pc {:#x}", spec.label(), m.pc()),
            }
        }
    }

    #[test]
    fn constant_return() {
        run_all("int main(void) { return 42; }", 42);
    }

    #[test]
    fn arithmetic_and_precedence() {
        run_all("int main(void) { return (2 + 3 * 4 - 1) / 2; }", 6);
        run_all(
            "int main(void) { int a = 10, b = 3; return a % b + (a << 2) + (a >> 1); }",
            1 + 40 + 5,
        );
    }

    #[test]
    fn locals_and_loops() {
        run_all(
            "int main(void) { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }",
            55,
        );
    }

    #[test]
    fn while_and_conditionals() {
        run_all(
            "
int main(void) {
    int n = 30, steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        steps++;
    }
    return steps;
}",
            18, // Collatz steps for 30
        );
    }

    #[test]
    fn functions_and_recursion() {
        run_all(
            "
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main(void) { return fib(10); }",
            55,
        );
    }

    #[test]
    fn many_arguments_spill_to_stack() {
        run_all(
            "
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
int main(void) { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }",
            36,
        );
    }

    #[test]
    fn global_arrays_and_pointers() {
        run_all(
            "
int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int sum(int *p, int n) {
    int s = 0;
    while (n-- > 0) s += *p++;
    return s;
}
int main(void) { return sum(tab, 8); }",
            36,
        );
    }

    #[test]
    fn strings_and_chars() {
        run_all(
            "
int length(char *s) { int n = 0; while (*s++) n++; return n; }
int main(void) { return length(\"hello world\"); }",
            11,
        );
    }

    #[test]
    fn structs_and_linked_fields() {
        run_all(
            "
struct point { int x; int y; };
struct point pts[3];
int main(void) {
    int i;
    for (i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
    return pts[2].x + pts[2].y + sizeof(struct point);
}",
            2 + 4 + 8,
        );
    }

    #[test]
    fn pointer_to_struct_fields() {
        run_all(
            "
struct node { int value; struct node *next; };
struct node a, b, c;
int main(void) {
    struct node *p;
    int s = 0;
    a.value = 1; a.next = &b;
    b.value = 2; b.next = &c;
    c.value = 4; c.next = (struct node *)0;
    for (p = &a; p; p = p->next) s += p->value;
    return s;
}",
            7,
        );
    }

    #[test]
    fn local_arrays_and_subword_access() {
        run_all(
            "
int main(void) {
    char buf[16];
    int i, s = 0;
    for (i = 0; i < 16; i++) buf[i] = (char)(i * 3);
    for (i = 0; i < 16; i++) s += buf[i];
    return s;
}",
            (0..16).map(|i| i * 3).sum::<i32>(),
        );
    }

    #[test]
    fn signed_char_extension() {
        run_all(
            "
char c = -5;
int main(void) { return c + 10; }",
            5,
        );
    }

    #[test]
    fn unsigned_semantics() {
        run_all(
            "
int main(void) {
    unsigned a = 0xFFFFFFF0u;
    unsigned b = a >> 4;      /* logical */
    int big = (a > 16) ? 1 : 0; /* unsigned compare */
    return (int)(b & 0xFF) + big;
}",
            0xFF + 1,
        );
    }

    #[test]
    fn division_runtime_helpers() {
        run_all(
            "
int main(void) {
    int a = -100, b = 7;
    unsigned ua = 1000u, ub = 24u;
    return a / b + a % b + (int)(ua / ub) + (int)(ua % ub);
}",
            -14 + -2 + 41 + 16,
        );
    }

    #[test]
    fn multiplication_strength_and_runtime() {
        run_all(
            "
int scale(int x, int k) { return x * k; }
int main(void) {
    return scale(7, 6) + 5 * 8 + 9 * 9 + (-3) * 4;
}",
            42 + 40 + 81 - 12,
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        run_all(
            "
int calls = 0;
int bump(void) { calls++; return 1; }
int main(void) {
    int r = 0;
    if (0 && bump()) r += 100;
    if (1 || bump()) r += 10;
    if (1 && bump()) r += 1;
    return r * 10 + calls;
}",
            111,
        );
    }

    #[test]
    fn ternary_and_logical_values() {
        run_all(
            "
int main(void) {
    int a = 5, b = 9;
    int m = a > b ? a : b;
    int t = (a < b) + (a == 5) + !(b == 9);
    return m * 10 + t;
}",
            92,
        );
    }

    #[test]
    fn floating_point_double() {
        run_all(
            "
double area(double r) { return 3.141592653589793 * r * r; }
int main(void) { return (int)area(10.0); }",
            314,
        );
    }

    #[test]
    fn floating_point_single() {
        run_all(
            "
float half(float x) { return x / 2.0f; }
int main(void) {
    float s = 0.0f;
    int i;
    for (i = 0; i < 8; i++) s = s + half((float)i);
    return (int)(s * 10.0f);
}",
            140,
        );
    }

    #[test]
    fn float_comparisons() {
        run_all(
            "
int main(void) {
    double a = 1.5, b = 2.5;
    int r = 0;
    if (a < b) r += 1;
    if (b <= 2.5) r += 2;
    if (a == 1.5) r += 4;
    if (a != b) r += 8;
    if (b > a) r += 16;
    if (a >= 1.6) r += 32;
    return r;
}",
            31,
        );
    }

    #[test]
    fn address_of_locals() {
        run_all(
            "
void bump(int *p) { *p = *p + 1; }
int main(void) {
    int x = 41;
    bump(&x);
    return x;
}",
            42,
        );
    }

    #[test]
    fn multidimensional_arrays() {
        run_all(
            "
int m[3][4];
int main(void) {
    int i, j, s = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    for (i = 0; i < 3; i++) s += m[i][3];
    return s;
}",
            3 + 13 + 23,
        );
    }

    #[test]
    fn builtins_write_console() {
        let spec = TargetSpec::d16();
        let image = compile_to_image(
            &["int main(void) { __putc('o'); __putc('k'); __puti(-12); return 0; }"],
            &spec,
        )
        .unwrap();
        let mut m = Machine::load(&image);
        m.run(1_000_000, &mut NullSink).unwrap();
        assert_eq!(m.console_string(), "ok-12");
    }

    #[test]
    fn d16_binary_is_smaller() {
        let src = "
int data[32];
int work(int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) { data[i] = i * i; s += data[i]; }
    return s;
}
int main(void) { return work(32) & 0xFF; }";
        let d16 = compile_to_image(&[src], &TargetSpec::d16()).unwrap();
        let dlxe = compile_to_image(&[src], &TargetSpec::dlxe()).unwrap();
        assert!(
            (d16.text.len() as f64) < 0.75 * dlxe.text.len() as f64,
            "D16 text {} vs DLXe {}",
            d16.text.len(),
            dlxe.text.len()
        );
    }

    #[test]
    fn stored_compile_serves_identical_images() {
        let dir = d16_testkit::TempDir::new("cc-store");
        let store = d16_store::Store::open(dir.path()).unwrap();
        let src = "int main(void) { return 6 * 7; }";
        for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
            let cold = compile_to_image_stored(&[src], &spec, Some(&store)).unwrap();
            let warm = compile_to_image_stored(&[src], &spec, Some(&store)).unwrap();
            let direct = compile_to_image(&[src], &spec).unwrap();
            assert_eq!(warm.text, cold.text);
            assert_eq!(warm.data, cold.data);
            assert_eq!(warm.text, direct.text, "cached image matches a fresh compile");
            assert_eq!(warm.symbols, direct.symbols);
        }
        let s = store.stats();
        assert_eq!((s.hit, s.miss, s.write), (2, 2, 2));

        // Damage one entry: the next lookup recompiles instead of serving it.
        let key = build_key(&[src], &TargetSpec::d16());
        let path = store.entry_path(IMAGE_KIND, key);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, raw).unwrap();
        let again = compile_to_image_stored(&[src], &TargetSpec::d16(), Some(&store)).unwrap();
        let direct = compile_to_image(&[src], &TargetSpec::d16()).unwrap();
        assert_eq!(again.text, direct.text);
        assert_eq!(store.stats().corrupt_evicted, 1);
    }

    #[test]
    fn compile_errors_are_reported() {
        let e = compile_to_asm(&["int main(void) { return x; }"], &TargetSpec::d16());
        assert!(e.is_err());
        let e = compile_to_asm(&["int f(void) { return 1; }"], &TargetSpec::d16());
        match e {
            Err(BuildError::Compile(c)) => assert!(c.msg.contains("main")),
            other => panic!("expected a compile error, got {other:?}"),
        }
    }

    /// `O0` (legalize-only) must produce runnable code on every target
    /// that agrees with the optimized build — including multiplies and
    /// divides, which only exist as runtime calls.
    #[test]
    fn o0_pipeline_matches_o2() {
        let src = "
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main(void) {
    int a = fib(10) * 3;      /* 165 */
    int b = (a / 7) % 10;     /* 3 */
    return a % 100 + b;       /* 68 */
}";
        for spec in [
            TargetSpec::d16(),
            TargetSpec::dlxe(),
            TargetSpec::dlxe_restricted(true, true, false),
            TargetSpec::dlxe_restricted(false, true, false),
        ] {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let image = compile_to_image_with(&[src], &spec, opt)
                    .unwrap_or_else(|e| panic!("[{} {opt:?}] {e}", spec.label()));
                let mut m = Machine::load(&image);
                match m.run(200_000_000, &mut NullSink) {
                    Ok(StopReason::Halted(v)) => {
                        assert_eq!(v, 68, "[{} {opt:?}]", spec.label())
                    }
                    other => panic!("[{} {opt:?}] {other:?}", spec.label()),
                }
            }
        }
    }

    /// Functions and globals named like registers must build and run on
    /// every target. `jal r15` on DLXe means an indirect jump through the
    /// register, so the compiler suffixes GPR-shaped identifiers with `$`
    /// when emitting symbols; without that, calling a function named
    /// `r15` jumped through whatever the register held.
    #[test]
    fn register_shaped_identifiers_build_everywhere() {
        let src = "
int r15(int n) { return n + 4; }
int f0(void) { return 7; }
int r2 = 5;
int main(void) { return r15(f0()) + r2; }";
        for spec in
            [TargetSpec::d16(), TargetSpec::dlxe(), TargetSpec::dlxe_restricted(true, true, false)]
        {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let image = compile_to_image_with(&[src], &spec, opt)
                    .unwrap_or_else(|e| panic!("[{} {opt:?}] {e}", spec.label()));
                let mut m = Machine::load(&image);
                match m.run(10_000_000, &mut NullSink) {
                    Ok(StopReason::Halted(v)) => {
                        assert_eq!(v, 16, "[{} {opt:?}]", spec.label())
                    }
                    other => panic!("[{} {opt:?}] {other:?}", spec.label()),
                }
            }
        }
    }

    /// The global-initializer folder and the IR constant folder must agree
    /// with the machine on oversized and negative shift counts: the
    /// hardware masks the count to five bits, so `1 << 32 == 1` and
    /// `1 << -1 == 1 << 31`. Each global is compared against the same
    /// expression computed from runtime-opaque values, exercising both the
    /// `lower.rs` fold (globals) and the `opt.rs`/`ir.rs` fold (locals).
    #[test]
    fn shift_counts_mask_to_five_bits_on_every_fold_path() {
        run_all(
            "
int g_over = 1 << 32;
int g_33 = 1 << 33;
int g_neg = 1 << -1;
int g_sar = (-8) >> 32;
int volatile_looking; /* keeps main from folding entirely */
int main(void) {
    int one = 1, m8 = -8, c32 = 32, c33 = 33, cm1 = -1;
    volatile_looking = one;
    if (g_over != (one << c32)) return 1;
    if (g_33 != (one << c33)) return 2;
    if (g_neg != (one << cm1)) return 3;
    if (g_sar != (m8 >> c32)) return 4;
    if (g_over != 1) return 5;
    if (g_33 != 2) return 6;
    if (g_sar != -8) return 7;
    return 0;
}",
            0,
        );
        // g_neg == 1 << 31 == INT_MIN: check its bit pattern via unsigned.
        run_all(
            "
int g_neg = 1 << -1;
int main(void) { unsigned u = g_neg; return (u >> 28) == 8; }",
            1,
        );
    }

    /// Division and remainder edges must agree three ways: the constant
    /// folder (globals and locals), the runtime helpers `__divsi3` and
    /// `__modsi3` (reached via runtime-opaque operands), and the documented
    /// contract in `d16_isa::sem` (`n/0 == 0`, `INT_MIN / -1 == INT_MIN`,
    /// `INT_MIN % -1 == 0`).
    #[test]
    fn div_rem_edges_agree_between_folder_and_runtime() {
        run_all(
            "
int g_dz = 5 / 0;
int g_rz = 5 % 0;
int g_min_div = (-2147483647 - 1) / -1;
int g_min_rem = (-2147483647 - 1) % -1;
int main(void) {
    int five = 5, zero = 0, min = -2147483647 - 1, m1 = -1;
    if (g_dz != five / zero) return 1;
    if (g_rz != five % zero) return 2;
    if (g_min_div != min / m1) return 3;
    if (g_min_rem != min % m1) return 4;
    if (g_dz != 0) return 5;
    if (g_rz != 0) return 6;
    if (g_min_div != min) return 7;
    if (g_min_rem != 0) return 8;
    return 0;
}",
            0,
        );
        // Unsigned division by zero is zero too, on both paths.
        run_all(
            "
int main(void) {
    unsigned a = 123, z = 0;
    unsigned q = a / z, r = a % z;
    return q + r;
}",
            0,
        );
    }
}
