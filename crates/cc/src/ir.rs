//! The compiler's three-address intermediate representation.
//!
//! Functions are CFGs of basic blocks holding simple register-transfer
//! instructions over unbounded virtual registers. Three register classes
//! exist (`Int`, `F32`, `F64`); FP values live in the FP file and cross to
//! the integer file only through explicit moves, mirroring the target's
//! simplified FPU interface.
//!
//! Booleans follow the machine convention: comparison results are zero /
//! all-ones (what the D16 `cmp` writes to `r0`); the lowering inserts a
//! negate when C requires the value 1.

use d16_isa::{Cond, FpCond, MemWidth};
use std::fmt;

/// A virtual register.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block id.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A stack-slot id (locals whose address is taken, arrays, structs).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u32);

/// Register class of a virtual register.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    /// 32-bit integer / pointer.
    Int,
    /// Single-precision float.
    F32,
    /// Double-precision float (an even/odd FPR pair on the targets).
    F64,
}

/// Integer binary operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl BinOp {
    /// Whether operands can swap without changing the result.
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Constant evaluation with the machine's semantics, delegated to
    /// [`d16_isa::sem`] so the folder, the simulator's ALU and the runtime
    /// helpers cannot drift apart: shift counts masked to five bits,
    /// division by zero yielding zero, signed overflow wrapping.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        use d16_isa::sem;
        match self {
            BinOp::Add => sem::add(a, b),
            BinOp::Sub => sem::sub(a, b),
            BinOp::Mul => sem::mul(a, b),
            BinOp::Div => sem::div(a, b),
            BinOp::Rem => sem::rem(a, b),
            BinOp::UDiv => sem::udiv(a as u32, b as u32) as i32,
            BinOp::URem => sem::urem(a as u32, b as u32) as i32,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => sem::shl(a, b),
            BinOp::Shr => sem::shr(a, b),
            BinOp::Sar => sem::sar(a, b),
        }
    }
}

/// Floating binary operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Conversions between classes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CvtKind {
    IntToF32,
    IntToF64,
    F32ToF64,
    F64ToF32,
    F32ToInt,
    F64ToInt,
}

impl CvtKind {
    /// Source class.
    #[allow(dead_code)] // used by tests and kept for IR consumers
    pub fn src(self) -> Class {
        match self {
            CvtKind::IntToF32 | CvtKind::IntToF64 => Class::Int,
            CvtKind::F32ToF64 | CvtKind::F32ToInt => Class::F32,
            CvtKind::F64ToF32 | CvtKind::F64ToInt => Class::F64,
        }
    }

    /// Destination class.
    #[allow(dead_code)] // used by tests and kept for IR consumers
    pub fn dst(self) -> Class {
        match self {
            CvtKind::F32ToInt | CvtKind::F64ToInt => Class::Int,
            CvtKind::IntToF32 | CvtKind::F64ToF32 => Class::F32,
            CvtKind::IntToF64 | CvtKind::F32ToF64 => Class::F64,
        }
    }
}

/// Where a memory operand's base address comes from.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Base {
    /// A register holding the address.
    Reg(VReg),
    /// A function stack slot.
    Slot(SlotId),
    /// A data symbol.
    Global(String),
}

/// One IR instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `rd <- imm`.
    MovI { rd: VReg, v: i32 },
    /// `rd <- fp constant` (class by `rd`).
    MovF { rd: VReg, v: f64 },
    /// Same-class register copy.
    Mov { rd: VReg, rs: VReg },
    /// Integer binary op; the right operand may be a constant.
    Bin { op: BinOp, rd: VReg, a: VReg, b: Operand },
    /// Two's-complement negate.
    Neg { rd: VReg, rs: VReg },
    /// Bitwise complement.
    Not { rd: VReg, rs: VReg },
    /// Comparison producing the machine boolean (0 / all-ones).
    Cmp { cond: Cond, rd: VReg, a: VReg, b: Operand },
    /// Floating binary op.
    FBin { op: FBinOp, rd: VReg, a: VReg, b: VReg },
    /// Floating negate.
    FNeg { rd: VReg, rs: VReg },
    /// Floating compare producing 0/1 in an integer register (via `rdsr`).
    FCmp { cond: FpCond, rd: VReg, a: VReg, b: VReg },
    /// Class conversion.
    Cvt { kind: CvtKind, rd: VReg, rs: VReg },
    /// Load (`rd` class decides FP vs int destination; FP loads expand to
    /// integer loads plus `mtf` at selection).
    Load { w: MemWidth, rd: VReg, base: Base, off: i32 },
    /// Store.
    Store { w: MemWidth, rs: VReg, base: Base, off: i32 },
    /// Address of a slot or global.
    Addr { rd: VReg, base: Base, off: i32 },
    /// Direct call.
    Call { func: String, args: Vec<VReg>, ret: Option<VReg> },
}

impl Inst {
    /// The defined register, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::MovI { rd, .. }
            | Inst::MovF { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Bin { rd, .. }
            | Inst::Neg { rd, .. }
            | Inst::Not { rd, .. }
            | Inst::Cmp { rd, .. }
            | Inst::FBin { rd, .. }
            | Inst::FNeg { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::Cvt { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Addr { rd, .. } => Some(*rd),
            Inst::Store { .. } => None,
            Inst::Call { ret, .. } => *ret,
        }
    }

    /// Registers read by the instruction.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::MovI { .. } | Inst::MovF { .. } => vec![],
            Inst::Mov { rs, .. } | Inst::Neg { rs, .. } | Inst::Not { rs, .. } => vec![*rs],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                let mut v = vec![*a];
                if let Operand::Reg(r) = b {
                    v.push(*r);
                }
                v
            }
            Inst::FBin { a, b, .. } | Inst::FCmp { a, b, .. } => vec![*a, *b],
            Inst::FNeg { rs, .. } | Inst::Cvt { rs, .. } => vec![*rs],
            Inst::Load { base, .. } => base_use(base),
            Inst::Store { rs, base, .. } => {
                let mut v = vec![*rs];
                v.extend(base_use(base));
                v
            }
            Inst::Addr { base, .. } => base_use(base),
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// Whether the instruction has no side effects (safe to remove when
    /// its result is unused).
    pub fn is_pure(&self) -> bool {
        !matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }
}

fn base_use(b: &Base) -> Vec<VReg> {
    match b {
        Base::Reg(r) => vec![*r],
        _ => vec![],
    }
}

/// An integer operand: register or immediate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Virtual register.
    Reg(VReg),
    /// 32-bit immediate.
    Imm(i32),
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Branch: to `t` when `v` is nonzero, else `f`.
    Br { v: VReg, t: BlockId, f: BlockId },
    /// Return.
    Ret(Option<VReg>),
}

impl Term {
    /// Successor blocks.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Term::Br { v, .. } => vec![*v],
            Term::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// A stack slot (byte size and alignment).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SlotInfo {
    /// Size in bytes.
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
}

/// An IR function.
#[derive(Clone, Debug)]
pub struct IrFunc {
    /// Name.
    pub name: String,
    /// Parameter registers, in ABI order (doubles occupy one F64 vreg).
    pub params: Vec<VReg>,
    /// Whether the function returns a value, and in which class.
    pub ret_class: Option<Class>,
    /// Blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Class of each virtual register.
    pub vclass: Vec<Class>,
    /// Stack slots.
    pub slots: Vec<SlotInfo>,
}

impl IrFunc {
    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: Class) -> VReg {
        self.vclass.push(class);
        VReg(self.vclass.len() as u32 - 1)
    }

    /// The class of a register.
    pub fn class(&self, r: VReg) -> Class {
        self.vclass[r.0 as usize]
    }

    /// Allocates a stack slot.
    pub fn new_slot(&mut self, size: u32, align: u32) -> SlotId {
        self.slots.push(SlotInfo { size, align });
        SlotId(self.slots.len() as u32 - 1)
    }

    /// Total virtual registers.
    pub fn vreg_count(&self) -> usize {
        self.vclass.len()
    }
}

/// A chunk of initialized data.
#[derive(Clone, PartialEq, Debug)]
pub enum DataChunk {
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A 32-bit little-endian word.
    Word(u32),
    /// A word holding a symbol address plus offset (relocated at link).
    WordSym(String, i32),
    /// `n` zero bytes.
    Zero(u32),
}

impl DataChunk {
    /// Byte size of the chunk.
    pub fn size(&self) -> u32 {
        match self {
            DataChunk::Bytes(b) => b.len() as u32,
            DataChunk::Word(_) | DataChunk::WordSym(..) => 4,
            DataChunk::Zero(n) => *n,
        }
    }
}

/// One named data item.
#[derive(Clone, Debug)]
pub struct DataItem {
    /// Symbol name.
    pub name: String,
    /// Alignment.
    pub align: u32,
    /// Contents in order.
    pub chunks: Vec<DataChunk>,
}

impl DataItem {
    /// Total byte size.
    pub fn size(&self) -> u32 {
        self.chunks.iter().map(DataChunk::size).sum()
    }
}

/// An uninitialized (bss) global.
#[derive(Clone, Debug)]
pub struct BssItem {
    /// Symbol name.
    pub name: String,
    /// Byte size.
    pub size: u32,
}

/// A lowered module: functions plus the data segment layout.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Functions, `main` first if present.
    pub funcs: Vec<IrFunc>,
    /// Data items in emission order (globals first, in declaration order,
    /// so early scalars land inside the D16 gp window).
    pub data: Vec<DataItem>,
    /// Uninitialized globals, emitted as `.comm` (bss): they occupy no
    /// bytes in the stripped binary, exactly as in the Unix binaries the
    /// paper measures.
    pub bss: Vec<BssItem>,
}

impl Module {
    /// Computes the byte offset of each data item from the start of the
    /// data segment, replicating the assembler's `.align` layout.
    pub fn data_offsets(&self) -> Vec<(String, u32)> {
        let mut off = 0u32;
        let mut out = Vec::with_capacity(self.data.len());
        for item in &self.data {
            off = (off + item.align - 1) & !(item.align - 1);
            out.push((item.name.clone(), off));
            off += item.size();
        }
        out
    }

    /// Total data-segment size under the same layout rules.
    pub fn data_size(&self) -> u32 {
        let mut off = 0u32;
        for item in &self.data {
            off = (off + item.align - 1) & !(item.align - 1);
            off += item.size();
        }
        off
    }

    /// Offsets of bss symbols *from the global pointer*, given the final
    /// data-segment size: the linker starts bss at the next 8-byte
    /// boundary and `.comm` aligns each item to 8 bytes.
    pub fn bss_offsets(&self, data_size: u32) -> Vec<(String, u32)> {
        let mut off = (data_size + 7) & !7;
        let mut out = Vec::with_capacity(self.bss.len());
        for item in &self.bss {
            off = (off + 7) & !7;
            out.push((item.name.clone(), off));
            off += item.size;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wraps_and_guards() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::UDiv.eval(-2, 3), ((u32::MAX - 1) / 3) as i32);
        assert_eq!(BinOp::Sar.eval(-8, 1), -4);
        assert_eq!(BinOp::Shr.eval(-8, 1), ((-8i32 as u32) >> 1) as i32);
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::Bin { op: BinOp::Add, rd: VReg(3), a: VReg(1), b: Operand::Reg(VReg(2)) };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        let s = Inst::Store { w: MemWidth::W, rs: VReg(4), base: Base::Reg(VReg(5)), off: 0 };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VReg(4), VReg(5)]);
        assert!(!s.is_pure());
    }

    #[test]
    fn data_layout_matches_alignment_rules() {
        let m = Module {
            funcs: vec![],
            bss: vec![],
            data: vec![
                DataItem {
                    name: "a".into(),
                    align: 1,
                    chunks: vec![DataChunk::Bytes(vec![1, 2, 3])],
                },
                DataItem { name: "b".into(), align: 4, chunks: vec![DataChunk::Word(7)] },
                DataItem { name: "c".into(), align: 8, chunks: vec![DataChunk::Zero(8)] },
            ],
        };
        let off = m.data_offsets();
        assert_eq!(off[0], ("a".into(), 0));
        assert_eq!(off[1], ("b".into(), 4));
        assert_eq!(off[2], ("c".into(), 8));
    }

    #[test]
    fn cvt_classes() {
        assert_eq!(CvtKind::IntToF64.src(), Class::Int);
        assert_eq!(CvtKind::IntToF64.dst(), Class::F64);
        assert_eq!(CvtKind::F64ToInt.dst(), Class::Int);
    }
}
