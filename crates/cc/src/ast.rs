//! Types and abstract syntax for Mini-C.
//!
//! Mini-C is the C subset the benchmark suite is written in: `int`,
//! `unsigned`, `char`, `float`, `double`, pointers, multi-dimensional
//! arrays, structs (by reference), the full C expression grammar minus
//! varargs/function pointers, and C89-style control flow. Section 2 of the
//! paper compiles its suite with GCC 2.1; Mini-C plus the `d16-cc`
//! optimizer plays that role here.

use crate::token::CError;

/// A Mini-C type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// `void` (function returns only).
    Void,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    Uint,
    /// 8-bit signed character.
    Char,
    /// IEEE single.
    Float,
    /// IEEE double.
    Double,
    /// Pointer.
    Ptr(Box<Ty>),
    /// Fixed-size array.
    Array(Box<Ty>, u32),
    /// Struct, by index into [`Program::structs`].
    Struct(usize),
}

impl Ty {
    /// Whether this is one of the two floating types.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }

    /// Whether this is an integer (or char) type.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int | Ty::Uint | Ty::Char)
    }

    /// Whether values of this type fit in a scalar register.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Ty::Void | Ty::Array(..) | Ty::Struct(_))
    }

    /// The type a value of this type decays to when used as an rvalue.
    pub fn decayed(&self) -> Ty {
        match self {
            Ty::Array(e, _) => Ty::Ptr(e.clone()),
            other => other.clone(),
        }
    }

    /// Size in bytes (needs the struct table for struct types).
    pub fn size(&self, structs: &[StructDef]) -> u32 {
        match self {
            Ty::Void => 0,
            Ty::Char => 1,
            Ty::Int | Ty::Uint | Ty::Float | Ty::Ptr(_) => 4,
            Ty::Double => 8,
            Ty::Array(e, n) => e.size(structs) * n,
            Ty::Struct(i) => structs[*i].size,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, structs: &[StructDef]) -> u32 {
        match self {
            Ty::Void => 1,
            Ty::Char => 1,
            Ty::Int | Ty::Uint | Ty::Float | Ty::Ptr(_) => 4,
            Ty::Double => 8,
            Ty::Array(e, _) => e.align(structs),
            Ty::Struct(i) => structs[*i].align,
        }
    }
}

/// A struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Fields: name, type, byte offset.
    pub fields: Vec<(String, Ty, u32)>,
    /// Padded size.
    pub size: u32,
    /// Alignment.
    pub align: u32,
}

impl StructDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&(String, Ty, u32)> {
        self.fields.iter().find(|(n, _, _)| n == name)
    }
}

/// An expression with its source line.
#[derive(Clone, Debug)]
pub struct E {
    /// The node.
    pub kind: Expr,
    /// 1-based source line.
    pub line: usize,
}

/// Expression nodes.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal; `true` = `f` suffix (float).
    Float(f64, bool),
    /// String literal (decays to `char*` at a fresh data symbol).
    Str(Vec<u8>),
    /// Named variable (local, parameter, or global).
    Ident(String),
    /// Unary operator: one of `- ~ ! * &`.
    Unary(&'static str, Box<E>),
    /// Pre-increment/-decrement: `++`/`--`.
    PreIncDec(&'static str, Box<E>),
    /// Post-increment/-decrement.
    PostIncDec(&'static str, Box<E>),
    /// Binary operator (arithmetic, comparison, logical, shifts).
    Binary(&'static str, Box<E>, Box<E>),
    /// Assignment: `=` or a compound `op=`.
    Assign(&'static str, Box<E>, Box<E>),
    /// Conditional expression.
    Ternary(Box<E>, Box<E>, Box<E>),
    /// Direct call (no function pointers in Mini-C).
    Call(String, Vec<E>),
    /// Array subscript.
    Index(Box<E>, Box<E>),
    /// Member access; `true` for `->`.
    Member(Box<E>, String, bool),
    /// Cast.
    Cast(Ty, Box<E>),
    /// `sizeof(type)` or `sizeof expr`.
    SizeofTy(Ty),
    /// `sizeof expr`.
    SizeofVal(Box<E>),
}

/// An initializer.
#[derive(Clone, Debug)]
pub enum Init {
    /// Scalar initializer expression.
    Expr(E),
    /// Brace-enclosed list.
    List(Vec<Init>),
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Expression statement.
    Expr(E),
    /// Local declaration(s).
    Decl(Vec<(String, Ty, Option<Init>, usize)>),
    /// `if`.
    If(E, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(E, Box<Stmt>),
    /// `do … while`.
    DoWhile(Box<Stmt>, E),
    /// `for(init; cond; step) body` — `init` may be a declaration.
    For(Option<Box<Stmt>>, Option<E>, Option<E>, Box<Stmt>),
    /// `return`.
    Return(Option<E>, usize),
    /// `break`.
    Break(usize),
    /// `continue`.
    Continue(usize),
    /// Braced block.
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

/// A global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Declaration line.
    pub line: usize,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Definition line.
    pub line: usize,
}

/// A parsed translation unit (or several, merged).
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Struct table.
    pub structs: Vec<StructDef>,
    /// Globals in declaration order (the compiler lays data out in this
    /// order, so hot scalars declared first land in the D16 gp window).
    pub globals: Vec<Global>,
    /// Functions.
    pub funcs: Vec<Func>,
}

impl Program {
    /// Finds a struct index by tag.
    pub fn struct_by_name(&self, name: &str) -> Option<usize> {
        self.structs.iter().position(|s| s.name == name)
    }

    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Reports a duplicate-definition error if `name` already names a
    /// global or function.
    pub fn check_fresh(&self, name: &str, line: usize) -> Result<(), CError> {
        if self.globals.iter().any(|g| g.name == name) || self.func(name).is_some() {
            Err(CError { line, msg: format!("duplicate definition of `{name}`") })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        let structs = vec![StructDef {
            name: "point".into(),
            fields: vec![
                ("x".into(), Ty::Int, 0),
                ("c".into(), Ty::Char, 4),
                ("y".into(), Ty::Double, 8),
            ],
            size: 16,
            align: 8,
        }];
        assert_eq!(Ty::Int.size(&structs), 4);
        assert_eq!(Ty::Char.size(&structs), 1);
        assert_eq!(Ty::Double.align(&structs), 8);
        assert_eq!(Ty::Array(Box::new(Ty::Int), 10).size(&structs), 40);
        assert_eq!(Ty::Struct(0).size(&structs), 16);
        assert_eq!(Ty::Ptr(Box::new(Ty::Struct(0))).size(&structs), 4);
    }

    #[test]
    fn decay() {
        let a = Ty::Array(Box::new(Ty::Char), 8);
        assert_eq!(a.decayed(), Ty::Ptr(Box::new(Ty::Char)));
        assert_eq!(Ty::Int.decayed(), Ty::Int);
    }
}
