//! Codegen-shape tests: inspect the *emitted assembly* (not just its
//! behavior) to pin down the mechanisms the paper's measurements rest on —
//! delay-slot filling, literal pools, compare/branch discipline, frame
//! save/restore, and the per-target immediate strategies.

use d16_cc::TargetSpec;

fn asm_for(src: &str, spec: &TargetSpec) -> String {
    d16_cc::compile_to_asm(&[src], spec).expect("compile")
}

/// Lines of one function's body (label to next non-local label).
fn function_body(asm: &str, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut capture = false;
    for line in asm.lines() {
        if line.starts_with(&format!("{name}:")) {
            capture = true;
            continue;
        }
        if capture && !line.starts_with(' ') && !line.starts_with('$') && !line.trim().is_empty() {
            break;
        }
        if capture {
            out.push(line.trim().to_string());
        }
    }
    assert!(!out.is_empty(), "function {name} not found in:\n{asm}");
    out
}

const LOOP_FN: &str = "
int sum(int n) {
    int s = 0, i;
    for (i = 0; i < n; i++) s += i;
    return s;
}
int main(void) { return sum(10); }";

#[test]
fn d16_branches_test_r0_only() {
    let asm = asm_for(LOOP_FN, &TargetSpec::d16());
    for line in asm.lines() {
        let t = line.trim();
        if t.starts_with("bz ") || t.starts_with("bnz ") {
            assert!(
                t.starts_with("bz r0,") || t.starts_with("bnz r0,"),
                "D16 conditional branches must test r0: {t}"
            );
        }
        if t.starts_with("cmp") && !t.starts_with("cmpeqi") {
            assert!(t.contains(" r0,"), "D16 compares must write r0: {t}");
        }
    }
}

#[test]
fn dlxe_branches_test_any_register() {
    let asm = asm_for(LOOP_FN, &TargetSpec::dlxe());
    let mut saw_non_r0 = false;
    for line in asm.lines() {
        let t = line.trim();
        if (t.starts_with("bz ") || t.starts_with("bnz ")) && !t.contains(" r0,") {
            saw_non_r0 = true;
        }
    }
    assert!(saw_non_r0, "DLXe should branch on allocated registers:\n{asm}");
}

#[test]
fn d16_calls_go_through_literal_pools() {
    let asm = asm_for(LOOP_FN, &TargetSpec::d16());
    let main = function_body(&asm, "main").join("\n");
    assert!(main.contains("ldc"), "D16 call needs an ldc: \n{main}");
    assert!(main.contains("jl r"), "D16 call jumps through a register:\n{main}");
    assert!(asm.contains(".pool"), "functions must emit literal pools");
    // DLXe uses direct jal instead.
    let dlxe = asm_for(LOOP_FN, &TargetSpec::dlxe());
    assert!(function_body(&dlxe, "main").join("\n").contains("jal sum"));
}

#[test]
fn delay_slots_follow_every_control_transfer() {
    // With scheduling off, every branch/jump/call must be followed by a
    // nop (the slot); with it on, some slots are filled and the dynamic
    // path is shorter or equal.
    let on = asm_for(LOOP_FN, &TargetSpec::d16());
    let mut off_spec = TargetSpec::d16();
    off_spec.schedule_delay_slots = false;
    let off = asm_for(LOOP_FN, &off_spec);
    let count_nops = |s: &str| s.lines().filter(|l| l.trim() == "nop").count();
    assert!(
        count_nops(&off) > count_nops(&on),
        "scheduler must fill some slots: {} vs {}",
        count_nops(&off),
        count_nops(&on)
    );
    // Unscheduled output: check the instruction after each control is nop.
    let lines: Vec<&str> = off
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.ends_with(':') && !l.starts_with('.') && !l.starts_with(';')
        })
        .collect();
    for (i, l) in lines.iter().enumerate() {
        let is_control = l.starts_with("br ")
            || l.starts_with("bz ")
            || l.starts_with("bnz ")
            || l.starts_with("j ")
            || l.starts_with("jl ");
        if is_control && i + 1 < lines.len() {
            assert_eq!(lines[i + 1], "nop", "unscheduled slot after `{l}`");
        }
    }
}

#[test]
fn two_address_shapes_on_restricted_targets() {
    let src = "int f(int a, int b, int c) { return a * 0 + (a + b) ^ c; }
               int main(void) { return f(1, 2, 3); }";
    for spec in [TargetSpec::d16(), TargetSpec::dlxe_restricted(false, true, false)] {
        let asm = asm_for(src, &spec);
        for line in asm.lines() {
            let t = line.trim();
            for op in ["add r", "sub r", "and r", "or r", "xor r", "shl r"] {
                if t.starts_with(op) {
                    // "op rd, rs1, rs2" with rd == rs1.
                    let rest = t.split_once(' ').unwrap().1;
                    let args: Vec<&str> = rest.split(',').map(str::trim).collect();
                    if args.len() == 3 {
                        assert_eq!(
                            args[0],
                            args[1],
                            "two-address shape violated [{}]: {t}",
                            spec.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn dlxe_large_constants_use_mvhi_ori() {
    let src = "int main(void) { return 0x12345678 & 0xFF; }";
    // Constant folding kills the literal, so force it through a call.
    let src2 = "int id(int x) { return x; } int main(void) { return id(0x12345678) & 0xFF; }";
    let _ = src;
    let dlxe = asm_for(src2, &TargetSpec::dlxe());
    assert!(
        dlxe.contains("mvhi") || dlxe.contains("0x12345678"),
        "large DLXe constants come from mvhi/ori:\n{dlxe}"
    );
    let d16 = asm_for(src2, &TargetSpec::d16());
    assert!(
        d16.contains("ldc") && d16.contains("=305419896"),
        "large D16 constants come from literal pools:\n{d16}"
    );
}

#[test]
fn callee_saved_registers_are_saved_and_restored() {
    // A function keeping values live across calls must save callee-saved
    // registers (or spill); either way it stores in its prologue.
    let src = "
int leaf(int x) { return x + 1; }
int busy(int a, int b) {
    int x = leaf(a);
    int y = leaf(b);
    int z = leaf(x + y);
    return x + y + z;
}
int main(void) { return busy(3, 4); }";
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let asm = asm_for(src, &spec);
        let body = function_body(&asm, "busy");
        let stores = body.iter().filter(|l| l.starts_with("st ")).count();
        let loads = body.iter().filter(|l| l.starts_with("ld ")).count();
        assert!(stores >= 2, "[{}] busy must save link + regs:\n{body:?}", spec.label());
        assert!(loads >= 2, "[{}] busy must restore:\n{body:?}", spec.label());
    }
}

#[test]
fn gp_window_used_for_early_scalars_on_d16() {
    let src = "
int hot = 1;
int main(void) { int i, s = 0; for (i = 0; i < 4; i++) s += hot; return s; }";
    let asm = asm_for(src, &TargetSpec::d16());
    assert!(asm.contains("(r13)"), "early scalar globals should be gp-relative on D16:\n{asm}");
}

#[test]
fn restricted_immediates_change_code_shape() {
    // DLXe with D16 immediate limits must materialize a 16-bit-sized
    // constant instead of using addi directly.
    let src = "int bump(int x) { return x + 1000; } int main(void) { return bump(1); }";
    let full = asm_for(src, &TargetSpec::dlxe());
    assert!(
        function_body(&full, "bump").iter().any(|l| l.contains("1000")),
        "unrestricted DLXe keeps the immediate inline"
    );
    let restricted = asm_for(src, &TargetSpec::dlxe_restricted(true, true, true));
    let body = function_body(&restricted, "bump");
    assert!(
        !body.iter().any(|l| l.starts_with("addi") && l.contains("1000")),
        "restricted DLXe may not use a 1000 addi immediate:\n{body:?}"
    );
}
