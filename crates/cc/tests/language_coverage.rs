//! Language-coverage tests: each exercises one Mini-C construct through
//! the full stack (compile → assemble → link → simulate) on the two
//! unrestricted targets, checking exact results.

use d16_cc::TargetSpec;
use d16_sim::{Machine, NullSink, StopReason};

#[track_caller]
fn run2(src: &str, expect: i32) {
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let image = match d16_cc::compile_to_image(&[src], &spec) {
            Ok(i) => i,
            Err(e) => panic!("[{}] {e}", spec.label()),
        };
        let mut m = Machine::load(&image);
        match m.run(50_000_000, &mut NullSink) {
            Ok(StopReason::Halted(v)) => assert_eq!(v, expect, "[{}]", spec.label()),
            other => panic!("[{}] {other:?}", spec.label()),
        }
    }
}

#[test]
fn do_while_runs_at_least_once() {
    run2("int main(void) { int n = 0; do { n++; } while (n < 0); return n; }", 1);
}

#[test]
fn nested_ternaries() {
    run2(
        "int cls(int x) { return x < 0 ? -1 : x == 0 ? 0 : 1; }
         int main(void) { return cls(-5) + 10 * cls(0) + 100 * cls(7); }",
        99,
    );
}

#[test]
fn comments_and_formatting() {
    run2(
        "/* block */ int main(void) { // line
            int x = 1; /* mid */ int y = 2;
            return x + y; // end
        }",
        3,
    );
}

#[test]
fn compound_assignment_on_array_elements() {
    run2(
        "int a[4];
         int main(void) {
             int i;
             for (i = 0; i < 4; i++) a[i] = i;
             a[1] += 10; a[2] -= 1; a[3] *= 6; a[0] |= 8;
             return a[0] + a[1] + a[2] + a[3];
         }",
        8 + 11 + 1 + 18,
    );
}

#[test]
fn shift_and_mask_pipeline() {
    run2(
        "int main(void) {
             unsigned x = 0xDEADBEEFu;
             return (int)(((x >> 16) & 0xFF) ^ ((x << 3) >> 29));
         }",
        {
            let x = 0xDEADBEEFu32;
            (((x >> 16) & 0xFF) ^ ((x << 3) >> 29)) as i32
        },
    );
}

#[test]
fn global_struct_initializer() {
    run2(
        "struct cfg { int width; char tag; int depth; };
         struct cfg defaults = { 80, 'x', 4 };
         int main(void) { return defaults.width + defaults.tag + defaults.depth; }",
        80 + 120 + 4,
    );
}

#[test]
fn array_of_pointers_to_strings() {
    run2(
        "char *names[3] = { \"ab\", \"cde\", \"f\" };
         int len(char *s) { int n = 0; while (*s++) n++; return n; }
         int main(void) {
             int i, total = 0;
             for (i = 0; i < 3; i++) total = total * 10 + len(names[i]);
             return total;
         }",
        231,
    );
}

#[test]
fn pointer_difference_and_comparison() {
    run2(
        "int buf[10];
         int main(void) {
             int *a = &buf[2];
             int *b = &buf[9];
             int d = (int)(b - a);
             int lt = a < b;
             return d * 10 + lt;
         }",
        71,
    );
}

#[test]
fn char_arithmetic_wraps_at_store() {
    run2(
        "char c;
         int main(void) { c = (char)(200 + 100); return c; }",
        (300i32 as i8) as i32, // stored through a byte, sign-extended on load
    );
}

#[test]
fn recursion_with_locals_preserved() {
    run2(
        "int depth_sum(int n) {
             int local = n * n;
             if (n == 0) return 0;
             return local + depth_sum(n - 1);
         }
         int main(void) { return depth_sum(8); }",
        (0..=8).map(|n| n * n).sum::<i32>(),
    );
}

#[test]
fn mixed_float_int_expressions() {
    run2(
        "int main(void) {
             double d = 7;           /* int -> double conversion */
             float f = 2.5f;
             int k = (int)(d * f);   /* 17.5 -> 17 */
             return k + (int)(d / 2); /* 17 + 3 */
         }",
        20,
    );
}

#[test]
fn negative_float_truncation() {
    run2(
        "int main(void) { double d = -3.7; return (int)d + 10; }",
        7, // C truncates toward zero: -3
    );
}

#[test]
fn while_with_side_effect_condition() {
    run2(
        "int main(void) {
             int i = 0, n = 0;
             while (i++ < 5) n += i;
             return n * 10 + i;
         }",
        (1 + 2 + 3 + 4 + 5) * 10 + 6,
    );
}

#[test]
fn break_and_continue_in_nested_loops() {
    run2(
        "int main(void) {
             int i, j, hits = 0;
             for (i = 0; i < 10; i++) {
                 if (i % 3 == 0) continue;
                 for (j = 0; j < 10; j++) {
                     if (j > i) break;
                     hits++;
                 }
             }
             return hits;
         }",
        {
            let mut hits = 0;
            for i in 0..10 {
                if i % 3 == 0 {
                    continue;
                }
                for j in 0..10 {
                    if j > i {
                        break;
                    }
                    hits += 1;
                }
            }
            hits
        },
    );
}

#[test]
fn sizeof_forms() {
    run2(
        "struct wide { double a; char b; };
         int main(void) {
             int arr[7];
             return sizeof(int) + sizeof(char) + sizeof(double)
                  + sizeof(struct wide) + sizeof arr;
         }",
        4 + 1 + 8 + 16 + 28,
    );
}

#[test]
fn logical_value_materialization() {
    run2(
        "int main(void) {
             int a = 3, b = 0;
             int x = (a && 7) + (b || 0) + !b + !!a;
             return x;
         }",
        1 + 1 + 1,
    );
}

#[test]
fn deep_expression_spills_registers() {
    // Enough simultaneously-live subexpressions to overflow the D16
    // register file and force spill code.
    run2(
        "int f(int a, int b) { return a * 31 + b; }
         int main(void) {
             int a = 1, b = 2, c = 3, d = 4, e = 5, g = 6, h = 7, i = 8;
             int t1 = f(a, b), t2 = f(c, d), t3 = f(e, g), t4 = f(h, i);
             int t5 = f(t1, t2), t6 = f(t3, t4);
             return (f(t5, t6) & 0xFFFF) + a + b + c + d + e + g + h + i;
         }",
        {
            let f = |a: i32, b: i32| a * 31 + b;
            let (t1, t2, t3, t4) = (f(1, 2), f(3, 4), f(5, 6), f(7, 8));
            (f(f(t1, t2), f(t3, t4)) & 0xFFFF) + 36
        },
    );
}

#[test]
fn global_hot_counter_in_gp_window() {
    // The first-declared global lands in the D16 gp window; verify direct
    // access correctness (and that later globals still work via pools).
    run2(
        "int hot = 5;
         int pad[100];
         int cold = 7;
         int main(void) {
             int i;
             for (i = 0; i < 10; i++) hot += cold;
             return hot + pad[50];
         }",
        75,
    );
}

#[test]
fn restricted_targets_also_agree_on_fp() {
    let src = "
double series(int n) {
    double s = 0.0;
    int k;
    for (k = 1; k <= n; k++) s = s + 1.0 / (double)k;
    return s;
}
int main(void) { return (int)(series(20) * 1000.0); }";
    let mut results = Vec::new();
    for spec in [
        TargetSpec::d16(),
        TargetSpec::dlxe(),
        TargetSpec::dlxe_restricted(true, true, true),
        TargetSpec::dlxe_restricted(false, true, false),
        TargetSpec::dlxe_restricted(true, false, true),
    ] {
        let image = d16_cc::compile_to_image(&[src], &spec).unwrap();
        let mut m = Machine::load(&image);
        let stop = m.run(50_000_000, &mut NullSink).unwrap();
        results.push(stop.exit_status().unwrap());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    assert_eq!(results[0], 3597, "harmonic(20) = 3.5977...");
}
