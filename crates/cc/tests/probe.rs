use d16_cc::{compile_to_asm, compile_to_image, TargetSpec};

#[test]
fn probe_float_single() {
    let src = "
float half(float x) { return x / 2.0f; }
int main(void) {
    float s = 0.0f;
    int i;
    for (i = 0; i < 8; i++) s = s + half((float)i);
    return (int)(s * 10.0f);
}";
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        eprintln!("== {} compiling...", spec.label());
        let asm = compile_to_asm(&[src], &spec).unwrap();
        eprintln!("== compiled, {} lines", asm.lines().count());
        let image = compile_to_image(&[src], &spec).unwrap();
        eprintln!("== linked, text {} bytes", image.text.len());
        let mut m = d16_sim::Machine::load(&image);
        let stop = m.run(2_000_000, &mut d16_sim::NullSink).unwrap();
        eprintln!("== ran: {:?} insns={}", stop, m.stats().insns);
        assert_eq!(stop.exit_status(), Some(140), "{}", spec.label());
    }
}
