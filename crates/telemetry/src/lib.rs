//! # d16-telemetry — counters and phase spans for the measurement path
//!
//! The paper's conclusions rest on counted events (instruction counts,
//! interlocks, I/D requests, cache misses per sub-block), so the engine
//! counts them with first-class, statically registered counters instead of
//! ad-hoc fields, and wraps its phases (cell collection, cache-grid
//! sweeps) in timed spans. The dump feeds `repro --metrics-json`
//! (schema `bench_repro/4`), which CI diffs byte-for-byte across worker
//! counts and execution engines.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Counter storage and every bump are
//!    behind the `enabled` cargo feature (re-exported as `telemetry` by
//!    the downstream crates). Compiled out, [`Counters`] is zero-sized
//!    and [`Counters::bump`] is an empty `#[inline]` function.
//! 2. **Deterministic when enabled.** Counters live in per-cell blocks
//!    (never shared atomics), are merged in cell order, and are rendered
//!    from ordered maps, so the dump is byte-identical for any `--jobs N`.
//! 3. **Cheap when enabled.** A bump is a bounds-checked array add into a
//!    statically laid-out block — no hashing, no locking, no allocation
//!    on the hot path (< 3% on the pipeline interpreter; see README
//!    "Telemetry").
//!
//! Counter *names* are registered statically through a [`Schema`]
//! (normally via the [`counter_schema!`] macro, which also defines an
//! index enum), so every subsystem's counters are enumerable without
//! running anything.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Whether counter storage is compiled in (the `enabled` cargo feature).
pub const ENABLED: bool = cfg!(feature = "enabled");

// ---------------------------------------------------------------------
// Static registration
// ---------------------------------------------------------------------

/// A statically registered table of counter names. One per subsystem,
/// built in a `static` (see [`counter_schema!`]); a [`Counters`] block is
/// laid out by it.
#[derive(Debug)]
pub struct Schema {
    names: &'static [&'static str],
}

impl Schema {
    /// Registers a name table. Intended to be called in a `static`.
    #[must_use]
    pub const fn new(names: &'static [&'static str]) -> Self {
        Schema { names }
    }

    /// Number of counters in the schema.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema registers no counters.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The registered names, in index order.
    #[must_use]
    pub const fn names(&self) -> &'static [&'static str] {
        self.names
    }
}

/// An index into a [`Schema`] — implemented by the enums that
/// [`counter_schema!`] generates.
pub trait CounterId: Copy {
    /// The counter's position in its schema.
    fn index(self) -> usize;
}

/// Defines a counter enum plus its static [`Schema`] in one place, so a
/// subsystem's counters are registered exactly once and bumps are plain
/// array adds:
///
/// ```
/// d16_telemetry::counter_schema! {
///     /// Demo counters.
///     pub DEMO_SCHEMA / DemoCounter {
///         Widgets => "widgets",
///         Gadgets => "gadgets",
///     }
/// }
/// let mut c = d16_telemetry::Counters::new(&DEMO_SCHEMA);
/// c.bump(DemoCounter::Widgets);
/// c.add(DemoCounter::Gadgets, 2);
/// # if d16_telemetry::ENABLED {
/// assert_eq!(c.get(DemoCounter::Gadgets), 2);
/// # }
/// ```
#[macro_export]
macro_rules! counter_schema {
    (
        $(#[$meta:meta])*
        $vis:vis $schema:ident / $id:ident {
            $($(#[$vmeta:meta])* $variant:ident => $name:literal,)+
        }
    ) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, Debug)]
        $vis enum $id {
            $($(#[$vmeta])* $variant,)+
        }

        impl $crate::CounterId for $id {
            #[inline]
            fn index(self) -> usize {
                self as usize
            }
        }

        $(#[$meta])*
        $vis static $schema: $crate::Schema =
            $crate::Schema::new(&[$($name,)+]);
    };
}

counter_schema! {
    /// Artifact-store operation counters (`d16-store`), registered here
    /// so the `store.*` names are enumerable like every other
    /// subsystem's. The store counts with its own atomics (it must
    /// count even with telemetry compiled out — cache behavior is not
    /// a measurement) and renders through these names; the counts stay
    /// out of the experiment registry so cold and warm `--metrics-json`
    /// dumps remain byte-identical (DESIGN.md §6).
    pub STORE_SCHEMA / StoreCounter {
        /// Entries served from disk.
        Hit => "hit",
        /// Lookups that found nothing servable.
        Miss => "miss",
        /// Entries committed.
        Write => "write",
        /// Entries evicted for failing the envelope or payload check.
        CorruptEvicted => "corrupt_evicted",
        /// Lookups or commits abandoned on a filesystem error (each one
        /// degraded to recomputation).
        IoErrors => "io_errors",
        /// Commits or evictions abandoned because another writer held the
        /// entry lock past the retry budget (degraded, never blocked).
        LockContention => "lock_contention",
    }
}

// ---------------------------------------------------------------------
// Counter blocks (the hot path)
// ---------------------------------------------------------------------

/// A block of counters laid out by a static [`Schema`]. This is the only
/// type that appears on hot paths; with the `enabled` feature off it
/// carries no storage and every method is an empty inline function.
#[derive(Clone)]
pub struct Counters {
    schema: &'static Schema,
    #[cfg(feature = "enabled")]
    vals: Vec<u64>,
}

impl Counters {
    /// An all-zero block for `schema`.
    #[must_use]
    pub fn new(schema: &'static Schema) -> Self {
        Counters {
            schema,
            #[cfg(feature = "enabled")]
            vals: vec![0; schema.len()],
        }
    }

    /// The schema this block is laid out by.
    #[must_use]
    pub fn schema(&self) -> &'static Schema {
        self.schema
    }

    /// Increments one counter.
    #[inline]
    pub fn bump(&mut self, id: impl CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&mut self, id: impl CounterId, n: u64) {
        #[cfg(feature = "enabled")]
        {
            self.vals[id.index()] += n;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (id, n);
    }

    /// One counter's value (always 0 with telemetry compiled out).
    #[must_use]
    pub fn get(&self, id: impl CounterId) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.vals[id.index()]
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            0
        }
    }

    /// Adds every counter of `other` (same schema) into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks were laid out by different schemas.
    pub fn merge_from(&mut self, other: &Counters) {
        assert!(
            std::ptr::eq(self.schema, other.schema),
            "merging counter blocks of different schemas"
        );
        #[cfg(feature = "enabled")]
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            *a += *b;
        }
    }

    /// Raw values in schema order — the persistence projection (see
    /// `d16-store`). Empty with telemetry compiled out, mirroring
    /// [`Counters::iter`].
    #[must_use]
    pub fn values(&self) -> &[u64] {
        #[cfg(feature = "enabled")]
        {
            &self.vals
        }
        #[cfg(not(feature = "enabled"))]
        {
            &[]
        }
    }

    /// Rebuilds a block from values captured by [`Counters::values`].
    /// Returns `None` on a length mismatch — which is what a dump from
    /// the *other* telemetry mode looks like, so persisted blocks never
    /// silently cross the enabled/disabled boundary.
    #[must_use]
    pub fn from_values(schema: &'static Schema, vals: &[u64]) -> Option<Counters> {
        #[cfg(feature = "enabled")]
        {
            (vals.len() == schema.len()).then(|| Counters { schema, vals: vals.to_vec() })
        }
        #[cfg(not(feature = "enabled"))]
        {
            vals.is_empty().then(|| Counters::new(schema))
        }
    }

    /// `(name, value)` pairs in schema order. Empty with telemetry
    /// compiled out, so dumps degrade to nothing rather than to zeros.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        #[cfg(feature = "enabled")]
        {
            self.schema.names().iter().copied().zip(self.vals.iter().copied())
        }
        #[cfg(not(feature = "enabled"))]
        {
            std::iter::empty()
        }
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Number of log2 histogram buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended
/// (~9.2 minutes and beyond).
pub const HIST_BUCKETS: usize = 40;

/// A log2-bucketed duration histogram (nanoseconds).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
    }

    /// The bucket a duration falls in.
    #[must_use]
    pub fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Bucket counts; index `i` covers `[2^i, 2^(i+1))` ns.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Total recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Aggregated statistics for one named span (phase): how often it ran
/// and how long it took. The count is deterministic; the durations are
/// wall-clock and belong in the timing (non-diffed) half of a report.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SpanStats {
    /// Completed executions of the span.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest execution.
    pub min_ns: u64,
    /// Longest execution.
    pub max_ns: u64,
    /// Log2 duration histogram.
    pub hist: Histogram,
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, hist: Histogram::default() }
    }
}

impl SpanStats {
    /// Records one execution.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.hist.record(ns);
    }

    /// Merges another span's executions into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.hist.buckets.iter_mut().zip(other.hist.buckets) {
            *a += b;
        }
    }
}

/// Times a closure, returning its result and the elapsed nanoseconds.
/// The span-recording idiom is
/// `let (v, ns) = timed(|| ...); registry.record_span("phase", ns);`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_nanos() as u64)
}

// ---------------------------------------------------------------------
// Registry (the cold path: merge + dump)
// ---------------------------------------------------------------------

/// An ordered dump target: named counters plus named spans. Everything
/// is keyed by `String` in `BTreeMap`s, so iteration — and therefore any
/// serialized dump — is deterministic no matter what order subsystems
/// reported in. Cold path only; hot paths use [`Counters`].
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `v` to the counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: impl Into<String>, v: u64) {
        *self.counters.entry(name.into()).or_insert(0) += v;
    }

    /// Absorbs a whole counter block under `prefix` (`prefix.name`).
    /// A no-op with telemetry compiled out.
    pub fn absorb(&mut self, prefix: &str, block: &Counters) {
        for (name, v) in block.iter() {
            self.add_counter(format!("{prefix}.{name}"), v);
        }
    }

    /// Records one execution of the span `name`.
    pub fn record_span(&mut self, name: impl Into<String>, wall_ns: u64) {
        self.spans.entry(name.into()).or_default().record(wall_ns);
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// One counter's value, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Spans in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> + '_ {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// One span's statistics, if present.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Merges another registry (summing counters, merging spans).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.add_counter(k.clone(), *v);
        }
        for (k, s) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge(s);
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    counter_schema! {
        /// Test counters.
        TEST_SCHEMA / TestCounter {
            Alpha => "alpha",
            Beta => "beta",
        }
    }

    #[test]
    fn schema_registers_names() {
        assert_eq!(TEST_SCHEMA.len(), 2);
        assert_eq!(TEST_SCHEMA.names(), &["alpha", "beta"]);
        assert!(!TEST_SCHEMA.is_empty());
    }

    #[test]
    fn bump_add_get_merge() {
        let mut a = Counters::new(&TEST_SCHEMA);
        a.bump(TestCounter::Alpha);
        a.add(TestCounter::Beta, 5);
        let mut b = Counters::new(&TEST_SCHEMA);
        b.add(TestCounter::Beta, 2);
        b.merge_from(&a);
        if ENABLED {
            assert_eq!(b.get(TestCounter::Alpha), 1);
            assert_eq!(b.get(TestCounter::Beta), 7);
            assert_eq!(b.iter().collect::<Vec<_>>(), vec![("alpha", 1), ("beta", 7)]);
        } else {
            assert_eq!(b.get(TestCounter::Beta), 0);
            assert_eq!(b.iter().count(), 0);
        }
    }

    #[test]
    fn values_roundtrip_through_from_values() {
        let mut a = Counters::new(&TEST_SCHEMA);
        a.add(TestCounter::Alpha, 3);
        a.add(TestCounter::Beta, 9);
        let vals = a.values().to_vec();
        let b = Counters::from_values(&TEST_SCHEMA, &vals).unwrap();
        assert_eq!(b.get(TestCounter::Alpha), a.get(TestCounter::Alpha));
        assert_eq!(b.get(TestCounter::Beta), a.get(TestCounter::Beta));
        if ENABLED {
            assert_eq!(vals, vec![3, 9]);
            assert!(Counters::from_values(&TEST_SCHEMA, &[1]).is_none(), "length checked");
        } else {
            assert!(vals.is_empty());
            assert!(Counters::from_values(&TEST_SCHEMA, &[1, 2]).is_none(), "cross-mode dump");
        }
    }

    #[test]
    fn store_schema_names() {
        assert_eq!(
            STORE_SCHEMA.names(),
            &["hit", "miss", "write", "corrupt_evicted", "io_errors", "lock_contention"]
        );
    }

    #[test]
    fn debug_renders_as_map() {
        let mut c = Counters::new(&TEST_SCHEMA);
        c.bump(TestCounter::Alpha);
        let s = format!("{c:?}");
        if ENABLED {
            assert!(s.contains("alpha"), "{s}");
        } else {
            assert_eq!(s, "{}");
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(1000);
        h.record(1024);
        assert_eq!(h.samples(), 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[10], 1);
    }

    #[test]
    fn span_stats_aggregate() {
        let mut s = SpanStats::default();
        s.record(10);
        s.record(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        let mut t = SpanStats::default();
        t.record(5);
        t.merge(&s);
        assert_eq!(t.count, 3);
        assert_eq!(t.min_ns, 5);
        assert_eq!(t.max_ns, 30);
        assert_eq!(t.hist.samples(), 3);
    }

    #[test]
    fn timed_measures_something() {
        let (v, ns) = timed(|| 7);
        assert_eq!(v, 7);
        assert!(ns < 1_000_000_000, "a constant should not take a second");
    }

    #[test]
    fn registry_is_ordered_and_mergeable() {
        let mut r = Registry::new();
        r.add_counter("z.last", 1);
        r.add_counter("a.first", 2);
        r.add_counter("z.last", 1);
        r.record_span("phase", 100);
        r.record_span("phase", 300);
        let names: Vec<_> = r.counters().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(r.counter("z.last"), Some(2));
        assert_eq!(r.span("phase").unwrap().count, 2);

        let mut other = Registry::new();
        other.add_counter("a.first", 1);
        other.record_span("phase", 50);
        other.record_span("other", 1);
        r.merge(&other);
        assert_eq!(r.counter("a.first"), Some(3));
        assert_eq!(r.span("phase").unwrap().count, 3);
        assert_eq!(r.span("phase").unwrap().min_ns, 50);
        assert_eq!(r.span("other").unwrap().count, 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn absorb_prefixes_block_counters() {
        let mut c = Counters::new(&TEST_SCHEMA);
        c.add(TestCounter::Alpha, 3);
        let mut r = Registry::new();
        r.absorb("sim", &c);
        if ENABLED {
            assert_eq!(r.counter("sim.alpha"), Some(3));
        } else {
            assert!(r.is_empty());
        }
    }
}
