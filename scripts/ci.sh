#!/usr/bin/env bash
# The CI gate suite. Run everything with no arguments, or name the gates
# to run: fmt clippy build test smoke determinism drift.
#
#   ./scripts/ci.sh                  # all gates, in order
#   ./scripts/ci.sh fmt clippy       # just the static gates
#
# Every gate is offline: the workspace has no external dependencies, so
# `--locked --offline` must always succeed. The determinism gate is the
# heart of the suite — it reruns the full experiment grid at two worker
# counts and requires the rendered tables, the checked-in results.txt,
# and the telemetry metrics dump to agree byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

gate_fmt() {
    step "rustfmt (--check)"
    cargo fmt --all --check
}

gate_clippy() {
    step "clippy (deny warnings, all targets)"
    cargo clippy --workspace --all-targets -- -D warnings
}

gate_build() {
    # The no-default-features build compiles telemetry out entirely —
    # build it first so the default build below leaves target/release
    # with the telemetry-enabled binaries the later gates exercise.
    step "release build, telemetry compiled out"
    cargo build --release --locked --offline --workspace --no-default-features
    step "release build"
    cargo build --release --locked --offline --workspace
}

gate_test() {
    step "unit + integration tests"
    cargo test -q
}

gate_smoke() {
    step "repro --smoke"
    ./target/release/repro --smoke >/dev/null
}

gate_determinism() {
    step "determinism: --jobs 1 vs --jobs 4, stdout + metrics byte-identical"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    ./target/release/repro --all --jobs 1 --metrics-json "$tmp/m1.json" >"$tmp/out1.txt"
    ./target/release/repro --all --jobs 4 --metrics-json "$tmp/m4.json" >"$tmp/out4.txt"
    cmp "$tmp/out1.txt" "$tmp/out4.txt"
    cmp "$tmp/m1.json" "$tmp/m4.json"
    step "determinism: --all output matches checked-in results.txt"
    cmp "$tmp/out1.txt" results.txt
}

gate_drift() {
    step "bench drift: fresh grid vs checked-in BENCH_repro.json"
    cargo test --release -p d16-xtests --test bench_drift -- --ignored
}

ALL_GATES=(fmt clippy build test smoke determinism drift)
gates=("${@:-${ALL_GATES[@]}}")
for g in "${gates[@]}"; do
    case "$g" in
    fmt | clippy | build | test | smoke | determinism | drift) "gate_$g" ;;
    *)
        echo "unknown gate: $g (expected: ${ALL_GATES[*]})" >&2
        exit 2
        ;;
    esac
done

printf '\nall gates green: %s\n' "${gates[*]}"
