#!/usr/bin/env bash
# The CI gate suite. Run everything with no arguments, or name the gates
# to run: fmt clippy build test smoke determinism engine store faults
# panics drift fuzz serve.
#
#   ./scripts/ci.sh                  # all gates, in order
#   ./scripts/ci.sh fmt clippy       # just the static gates
#
# Every gate is offline: the workspace has no external dependencies, so
# `--locked --offline` must always succeed. The determinism gate is the
# heart of the suite — it reruns the full experiment grid at two worker
# counts and requires the rendered tables, the checked-in results.txt,
# and the telemetry metrics dump to agree byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

gate_fmt() {
    step "rustfmt (--check)"
    cargo fmt --all --check
}

gate_clippy() {
    step "clippy (deny warnings, all targets)"
    cargo clippy --workspace --all-targets -- -D warnings
}

gate_build() {
    # The no-default-features build compiles telemetry out entirely —
    # build it first so the default build below leaves target/release
    # with the telemetry-enabled binaries the later gates exercise.
    step "release build, telemetry compiled out"
    cargo build --release --locked --offline --workspace --no-default-features
    step "release build"
    cargo build --release --locked --offline --workspace
}

gate_test() {
    step "unit + integration tests"
    cargo test -q
}

gate_smoke() {
    step "repro --smoke"
    ./target/release/repro --smoke >/dev/null
}

gate_determinism() {
    step "determinism: --jobs 1 vs --jobs 4, stdout + metrics byte-identical"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    ./target/release/repro --all --jobs 1 --metrics-json "$tmp/m1.json" >"$tmp/out1.txt"
    ./target/release/repro --all --jobs 4 --metrics-json "$tmp/m4.json" >"$tmp/out4.txt"
    cmp "$tmp/out1.txt" "$tmp/out4.txt"
    cmp "$tmp/m1.json" "$tmp/m4.json"
    step "determinism: the --jobs diff covered the pipeline-sweep tables"
    # --all includes the depth x predictor sweep, so the byte-compare
    # above is also the sweep-determinism gate; pin that inclusion so a
    # future flag reshuffle cannot silently drop the sweep from the diff.
    grep -q 'Extension: pipeline sweep' "$tmp/out1.txt"
    grep -q 'Extension: fetch traffic across fetch widths' "$tmp/out1.txt"
    step "determinism: the --jobs diff covered the extended-suite tables"
    # Same pinning for the extended-suite distribution tables: --all
    # implies --extended, and the byte-compare must keep covering the
    # 26-program tables and their bootstrap intervals.
    grep -q 'Extension: extended-suite static size vs D16 = 1.00 (26 programs)' "$tmp/out1.txt"
    grep -q 'Extension: extended-suite path length vs D16 = 1.00 (26 programs)' "$tmp/out1.txt"
    grep -q 'Extension: extended-suite ratio distributions over workloads' "$tmp/out1.txt"
    step "determinism: --all output matches checked-in results.txt"
    cmp "$tmp/out1.txt" results.txt
}

gate_engine() {
    # The two execution engines must be observationally identical: the
    # rendered tables and the deterministic metrics dump may not differ
    # by a byte between the block-caching default and the per-instruction
    # interpreter. The speedup itself is gated in-process (same machine,
    # same build) by the bench_drift floor test.
    step "engine: --engine blocks vs --engine interp, stdout + metrics byte-identical"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    ./target/release/repro --smoke --engine blocks \
        --metrics-json "$tmp/m_blocks.json" >"$tmp/out_blocks.txt"
    ./target/release/repro --smoke --engine interp \
        --metrics-json "$tmp/m_interp.json" >"$tmp/out_interp.txt"
    cmp "$tmp/out_blocks.txt" "$tmp/out_interp.txt"
    cmp "$tmp/m_blocks.json" "$tmp/m_interp.json"
    step "engine: --all --engine interp matches checked-in results.txt"
    ./target/release/repro --all --engine interp >"$tmp/all_interp.txt"
    cmp "$tmp/all_interp.txt" results.txt
    step "engine: D16x fusion workloads byte-identical across engines"
    ./target/release/repro --only fsm,addrgen --d16x --fig 4 --engine blocks \
        --metrics-json "$tmp/m_x_blocks.json" >"$tmp/out_x_blocks.txt"
    ./target/release/repro --only fsm,addrgen --d16x --fig 4 --engine interp \
        --metrics-json "$tmp/m_x_interp.json" >"$tmp/out_x_interp.txt"
    cmp "$tmp/out_x_blocks.txt" "$tmp/out_x_interp.txt"
    cmp "$tmp/m_x_blocks.json" "$tmp/m_x_interp.json"
    step "engine: non-default pipeline spec (depth 8, twobit, fetch 1) byte-identical across engines"
    # Non-default specs run the BlockEngine's dynamic lowering (fusion
    # off, runtime stall scoreboard) — a code path the default-spec
    # comparisons above never reach.
    ./target/release/repro --only towers,queens --fig 5 \
        --pipeline-depth 8 --pipeline-predictor twobit --pipeline-fetch 1 \
        --engine blocks --metrics-json "$tmp/m_p_blocks.json" >"$tmp/out_p_blocks.txt"
    ./target/release/repro --only towers,queens --fig 5 \
        --pipeline-depth 8 --pipeline-predictor twobit --pipeline-fetch 1 \
        --engine interp --metrics-json "$tmp/m_p_interp.json" >"$tmp/out_p_interp.txt"
    cmp "$tmp/out_p_blocks.txt" "$tmp/out_p_interp.txt"
    cmp "$tmp/m_p_blocks.json" "$tmp/m_p_interp.json"
    step "engine: 4x best-of-3 speedup floor (block engine vs interpreter, in-process)"
    cargo test --release --locked --offline -p d16-xtests --test bench_drift \
        -- --ignored --exact block_engine_speedup_floor
}

gate_store() {
    step "store: cold run, then warm run against the same --store"
    local tmp t0 cold_ns warm_ns
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    t0=$(date +%s%N)
    ./target/release/repro --all --store "$tmp/store" \
        --metrics-json "$tmp/m_cold.json" >"$tmp/cold.txt"
    cold_ns=$(($(date +%s%N) - t0))
    t0=$(date +%s%N)
    ./target/release/repro --all --store "$tmp/store" \
        --metrics-json "$tmp/m_warm.json" >"$tmp/warm.txt" 2>"$tmp/err_warm.txt"
    warm_ns=$(($(date +%s%N) - t0))
    step "store: warm outputs byte-identical to cold (stdout, results.txt, metrics)"
    cmp "$tmp/cold.txt" "$tmp/warm.txt"
    cmp "$tmp/m_cold.json" "$tmp/m_warm.json"
    cmp "$tmp/cold.txt" results.txt
    grep -q ' 0 misses' "$tmp/err_warm.txt"
    step "store: warm run at least 3x faster (cold ${cold_ns}ns, warm ${warm_ns}ns)"
    [ $((warm_ns * 3)) -le "$cold_ns" ]
    step "store: corrupt one entry; third run recomputes and still matches"
    local victim
    victim=$(find "$tmp/store/cell" -name '*.bin' | sort | head -n 1)
    printf 'XXXX' | dd of="$victim" bs=1 seek=40 conv=notrunc status=none
    ./target/release/repro --all --store "$tmp/store" \
        --metrics-json "$tmp/m_third.json" >"$tmp/third.txt" 2>"$tmp/err_third.txt"
    cmp "$tmp/cold.txt" "$tmp/third.txt"
    cmp "$tmp/m_cold.json" "$tmp/m_third.json"
    grep -q '1 corrupt evicted' "$tmp/err_third.txt"
}

gate_faults() {
    # Every failpoint of the fault-injection harness, one subprocess per
    # fault: user errors exit 2, degraded runs exit 3, diagnostics stay
    # on stderr, and no fault may panic the binary or corrupt a store.
    # The non-fatal faults additionally leave stdout byte-identical to a
    # clean run (asserted inside the tests and re-checked here for the
    # store-io fault against the checked-in results.txt).
    step "faults: fault-injection subprocess tests"
    cargo test --release --locked --offline -p d16-bench --test faults
    step "faults: store-io on the full grid still matches results.txt"
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' RETURN
    set +e
    D16_FAILPOINTS=store-io ./target/release/repro --all --store "$tmp/store" \
        >"$tmp/out.txt" 2>"$tmp/err.txt"
    local code=$?
    set -e
    [ "$code" -eq 3 ] || {
        echo "expected exit 3 (degraded), got $code" >&2
        cat "$tmp/err.txt" >&2
        exit 1
    }
    cmp "$tmp/out.txt" results.txt
    grep -q 'I/O errors (degraded to recomputation)' "$tmp/err.txt"
}

gate_panics() {
    # No panicking macro or .unwrap() may appear on a library crate's
    # non-test paths; .expect()/unreachable!() with a justification
    # message are allowed for true invariants. The allowlist holds the
    # few reviewed exceptions (currently the #[deprecated] accessors).
    step "panics: grep gate over library crate sources"
    local bad=0 crate f hits
    for crate in core cc sim asm mem store fuzz serve; do
        for f in crates/$crate/src/*.rs; do
            # Strip everything from the first top-level #[cfg(test)] on:
            # test modules may panic freely.
            hits=$(awk '/^#\[cfg\(test\)\]/{exit} /panic!\(|\.unwrap\(\)/{printf "%s:%d: %s\n", FILENAME, FNR, $0}' "$f" \
                | grep -v -F -f scripts/panic-allowlist.txt || true)
            if [ -n "$hits" ]; then
                echo "$hits"
                bad=1
            fi
        done
    done
    if [ "$bad" -ne 0 ]; then
        echo "panic!/.unwrap() on a library path; return a typed error" >&2
        echo "(reviewed exceptions go in scripts/panic-allowlist.txt)" >&2
        exit 1
    fi
}

gate_drift() {
    step "bench drift: fresh grid vs checked-in BENCH_repro.json"
    cargo test --release -p d16-xtests --test bench_drift -- --ignored
}

gate_fuzz() {
    # Differential fuzzing on a fixed seed: 500 generated whole programs,
    # each run on every standard target at O0 and O2 against the
    # reference interpreter plus the encoding round-trip and
    # engine-agreement (interp vs blocks) oracles. Fully deterministic —
    # a failure prints a minimized reproducer. Then every committed
    # miscompile reproducer in crates/xtests/corpus replays.
    step "fuzz: fixed-seed differential budget (500 programs x 12 configs)"
    cargo build --release --locked --offline -p d16-fuzz
    ./target/release/d16-fuzz --seed 20260806 --count 500
    step "fuzz: corpus replay"
    ./target/release/d16-fuzz --replay crates/xtests/corpus
}

gate_serve() {
    # Boot the experiment-service daemon, replay the committed request
    # corpus cold (every body byte-identical to its golden answer),
    # replay it warm (everything served from the store, p99 within the
    # pinned drift bound), shut down via SIGTERM, and reconcile the
    # daemon's final counter dump against loadgen's per-status totals.
    step "serve: boot daemon, cold replay byte-diffed against golden bodies"
    local tmp pid addr entry
    tmp=$(mktemp -d)
    ./target/release/d16-serve --addr 127.0.0.1:0 --workers 4 --queue 64 \
        --port-file "$tmp/port" --store "$tmp/store" \
        --metrics-json "$tmp/metrics.json" 2>"$tmp/daemon.log" &
    pid=$!
    trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' RETURN
    for _ in $(seq 1 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
    [ -s "$tmp/port" ] || {
        echo "daemon did not come up" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    }
    addr=$(tr -d '\n' <"$tmp/port")
    ./target/release/d16-loadgen --addr "$addr" --corpus crates/serve/corpus \
        --concurrency 4 --repeat 1 --save-bodies "$tmp/cold_bodies" \
        --out "$tmp/bench_cold.json"
    for entry in crates/serve/corpus/golden/*.json; do
        cmp "$entry" "$tmp/cold_bodies/$(basename "$entry")"
    done
    step "serve: warm replay — hit-ratio floor, p99 within the pinned drift bound"
    ./target/release/d16-loadgen --addr "$addr" --corpus crates/serve/corpus \
        --concurrency 8 --repeat 3 --save-bodies "$tmp/warm_bodies" \
        --out "$tmp/bench_warm.json" \
        --min-hit-ratio 0.9 --check-drift BENCH_serve.json --drift-factor 50
    step "serve: warm bodies byte-identical to the golden answers"
    for entry in crates/serve/corpus/golden/*.json; do
        cmp "$entry" "$tmp/warm_bodies/$(basename "$entry")"
    done
    step "serve: SIGTERM shutdown; counters reconcile with loadgen totals"
    kill -TERM "$pid"
    wait "$pid"
    ./target/release/d16-loadgen --reconcile "$tmp/metrics.json" \
        "$tmp/bench_cold.json" "$tmp/bench_warm.json"
    step "serve: concurrent-store stress (threads + subprocesses, one root)"
    cargo test --release --locked --offline -p d16-xtests --test store_concurrent
}

ALL_GATES=(fmt clippy build test smoke determinism engine store faults panics drift fuzz serve)
gates=("${@:-${ALL_GATES[@]}}")
for g in "${gates[@]}"; do
    case "$g" in
    fmt | clippy | build | test | smoke | determinism | engine | store | faults | panics | drift | fuzz | serve) "gate_$g" ;;
    *)
        echo "unknown gate: $g (expected: ${ALL_GATES[*]})" >&2
        exit 2
        ;;
    esac
done

printf '\nall gates green: %s\n' "${gates[*]}"
