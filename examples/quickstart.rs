//! Quickstart: compile one C program for both instruction sets, run it on
//! the shared pipeline, and print the paper's headline metrics.
//!
//! ```text
//! cargo run --release -p d16-core --example quickstart
//! ```

use d16_cc::TargetSpec;
use d16_sim::{Machine, NullSink};

const PROGRAM: &str = r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    return fib(16);     /* 987 */
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("program: recursive fib(16)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "target", "text (B)", "path (insns)", "fetch words", "exit"
    );
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let image = d16_cc::compile_to_image(&[PROGRAM], &spec)?;
        let mut machine = Machine::load(&image);
        let stop = machine.run(10_000_000, &mut NullSink)?;
        let s = machine.stats();
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10}",
            spec.label(),
            image.text.len(),
            s.insns,
            s.ifetch_words,
            stop.exit_status().unwrap_or(-1),
        );
    }
    println!(
        "\nThe 16-bit encoding runs more instructions but moves fewer\n\
         instruction words — the trade the paper quantifies."
    );
    Ok(())
}
