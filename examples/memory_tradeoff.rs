//! Memory-system trade-off: for *your* memory latency and bus width, which
//! encoding is faster? Reproduces the paper's Section 4 decision procedure
//! over the whole suite and prints the crossover.
//!
//! ```text
//! cargo run --release -p d16-core --example memory_tradeoff [wait_states] [bus_bits]
//! ```

use d16_core::{base_specs, Suite};
use d16_workloads::SUITE;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wait: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let bus_bits: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let bus = bus_bits / 8;

    eprintln!("measuring the suite on both machines...");
    let all: Vec<_> = SUITE.iter().collect();
    let suite = match Suite::collect_for(&all, &base_specs(), false) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    };

    println!("\ncacheless machine, {bus_bits}-bit fetch bus, {wait} wait state(s):\n");
    println!("{:<12} {:>14} {:>14} {:>8}", "program", "D16 cycles", "DLXe cycles", "winner");
    let mut d16_wins = 0;
    for w in suite.workloads() {
        // A degraded suite may be missing cells; skip those workloads.
        let (Ok(d16), Ok(dlxe)) = (suite.try_get(&w, "D16/16/2"), suite.try_get(&w, "DLXe/32/3"))
        else {
            continue;
        };
        let d16 = d16.cacheless_cycles(bus, wait);
        let dlxe = dlxe.cacheless_cycles(bus, wait);
        let winner = if d16 <= dlxe { "D16" } else { "DLXe" };
        if d16 <= dlxe {
            d16_wins += 1;
        }
        println!("{:<12} {:>14} {:>14} {:>8}", w, d16, dlxe, winner);
    }
    println!("\nD16 wins {d16_wins}/{} workloads at this design point.", suite.workloads().len());

    // Where is the crossover for this bus width?
    println!("\ncrossover sweep (mean cycle ratio DLXe/D16 per wait state):");
    for l in 0..=4u64 {
        let mut ratio = 0.0;
        let mut n = 0usize;
        for w in &suite.workloads() {
            let (Ok(d16), Ok(dlxe)) = (suite.try_get(w, "D16/16/2"), suite.try_get(w, "DLXe/32/3"))
            else {
                continue;
            };
            ratio += dlxe.cacheless_cycles(bus, l) as f64 / d16.cacheless_cycles(bus, l) as f64;
            n += 1;
        }
        ratio /= n as f64;
        let note = if ratio >= 1.0 { "D16 faster on average" } else { "DLXe faster on average" };
        println!("  l={l}: {ratio:.3}  ({note})");
    }
}
