//! Toolchain tour: watch one function travel the whole stack — Mini-C →
//! optimized assembly for each encoding → binary → disassembly → execution
//! — and see exactly where the 16-bit format pays (two-address moves,
//! `ldc` literal pools, `r0` compare discipline) and where it wins (half
//! the fetch bytes).
//!
//! ```text
//! cargo run --release -p d16-core --example toolchain_tour
//! ```

use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_sim::{Machine, NullSink};

const PROGRAM: &str = r#"
int histogram[16];

int saturate(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

int main(void) {
    int i;
    for (i = 0; i < 100; i++) {
        int bucket = saturate((i * 7) % 21, 0, 15);
        histogram[bucket] += 1;
    }
    return histogram[0] + histogram[15] * 100;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        println!("================ {} ================", spec.label());
        let asm = d16_cc::compile_to_asm(&[PROGRAM], &spec)?;
        // Show the `saturate` function's code: small enough to read.
        let mut show = false;
        for line in asm.lines() {
            if line.starts_with("saturate:") {
                show = true;
            } else if show && !line.starts_with(' ') && !line.starts_with('$') {
                break;
            }
            if show {
                println!("{line}");
            }
        }

        let image = d16_asm::build(spec.isa, &[&asm])?;
        println!("\nbinary: {} text bytes, {} data bytes", image.text.len(), image.data.len());

        // Disassemble the first instructions at the entry point.
        println!("entry disassembly:");
        let entry_off = (image.entry - image.text_base) as usize;
        let ilen = spec.isa.insn_bytes() as usize;
        for k in 0..6 {
            let o = entry_off + k * ilen;
            let insn = match spec.isa {
                Isa::D16 => d16_isa::d16::decode(u16::from_le_bytes(
                    image.text[o..o + 2].try_into().unwrap(),
                ))?,
                Isa::Dlxe => d16_isa::dlxe::decode(u32::from_le_bytes(
                    image.text[o..o + 4].try_into().unwrap(),
                ))?,
            };
            println!("  {:#07x}: {}", image.text_base as usize + o, d16_isa::disassemble(&insn));
        }

        let mut machine = Machine::load(&image);
        let stop = machine.run(1_000_000, &mut NullSink)?;
        let s = machine.stats();
        println!(
            "\nran: exit {:?}, {} instructions, {} interlock cycles, {} fetch words\n",
            stop.exit_status(),
            s.insns,
            s.interlocks,
            s.ifetch_words
        );
    }
    Ok(())
}
