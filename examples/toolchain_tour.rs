//! Toolchain tour: watch one function travel the whole stack — Mini-C →
//! optimized assembly for each encoding → binary → disassembly → execution
//! — and see exactly where the 16-bit format pays (two-address moves,
//! `ldc` literal pools, `r0` compare discipline) and where it wins (half
//! the fetch bytes).
//!
//! ```text
//! cargo run --release -p d16-core --example toolchain_tour
//! ```

use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_sim::{Machine, NullSink};

const PROGRAM: &str = r#"
int histogram[16];

int saturate(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

int main(void) {
    int i;
    for (i = 0; i < 100; i++) {
        int bucket = saturate((i * 7) % 21, 0, 15);
        histogram[bucket] += 1;
    }
    return histogram[0] + histogram[15] * 100;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for spec in [TargetSpec::d16(), TargetSpec::dlxe(), TargetSpec::d16x()] {
        println!("================ {} ================", spec.label());
        let asm = d16_cc::compile_to_asm(&[PROGRAM], &spec)?;
        // Show the `saturate` function's code: small enough to read.
        let mut show = false;
        for line in asm.lines() {
            if line.starts_with("saturate:") {
                show = true;
            } else if show && !line.starts_with(' ') && !line.starts_with('$') {
                break;
            }
            if show {
                println!("{line}");
            }
        }

        let image = d16_asm::build(spec.isa, &[&asm])?;
        println!("\nbinary: {} text bytes, {} data bytes", image.text.len(), image.data.len());

        // Disassemble the first instructions at the entry point. D16x is
        // variable-length, so the walk advances by each instruction's own
        // size instead of a fixed stride.
        println!("entry disassembly:");
        let mut o = (image.entry - image.text_base) as usize;
        for _ in 0..6 {
            let half = |at: usize| u16::from_le_bytes(image.text[at..at + 2].try_into().unwrap());
            let (insn, len) = match spec.isa {
                Isa::D16 => (d16_isa::d16::decode(half(o))?, 2),
                Isa::Dlxe => (
                    d16_isa::dlxe::decode(u32::from_le_bytes(
                        image.text[o..o + 4].try_into().unwrap(),
                    ))?,
                    4,
                ),
                Isa::D16x => {
                    let first = half(o);
                    let len = d16_isa::d16x::insn_len(first) as usize;
                    let second = (len == 4).then(|| half(o + 2));
                    let (insn, _) = d16_isa::d16x::decode(first, second)?;
                    (insn, len)
                }
            };
            println!("  {:#07x}: {}", image.text_base as usize + o, d16_isa::disassemble(&insn));
            o += len;
        }

        let mut machine = Machine::load(&image);
        let stop = machine.run(1_000_000, &mut NullSink)?;
        let s = machine.stats();
        println!(
            "\nran: exit {:?}, {} instructions, {} interlock cycles, {} fetch words\n",
            stop.exit_status(),
            s.insns,
            s.interlocks,
            s.ifetch_words
        );
    }
    Ok(())
}
