//! Cache design exploration: how big an instruction cache does a 16-bit
//! encoding save? Sweeps size, block size, associativity and wrap-around
//! prefetch for one workload on both ISAs — the §4.1 methodology applied
//! to a design question the paper's conclusion raises.
//!
//! ```text
//! cargo run --release -p d16-core --example cache_designer [workload]
//! ```

use d16_cc::TargetSpec;
use d16_isa::Isa;
use d16_mem::{CacheConfig, CacheSystem};
use d16_sim::{Machine, TraceRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "assem".to_string());
    let workload = d16_workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (see d16-workloads)"));
    println!("workload: {} — {}\n", workload.name, workload.description);

    // One functional run per ISA captures a trace; every cache geometry
    // below replays it (the paper's dinero methodology).
    let mut traces = Vec::new();
    for spec in [TargetSpec::d16(), TargetSpec::dlxe()] {
        let image = d16_cc::compile_to_image(&[workload.source], &spec)?;
        let mut machine = Machine::load(&image);
        let mut rec = TraceRecorder::new();
        machine.run(2_000_000_000, &mut rec)?;
        traces.push((spec.isa, rec, *machine.stats()));
    }

    println!(
        "{:<22} {:>12} {:>12}  winner at equal cost",
        "I-cache geometry", "D16 miss", "DLXe miss"
    );
    for size in [512u32, 1024, 2048, 4096] {
        for assoc in [1u32, 2] {
            for prefetch in [true, false] {
                let mut rates = Vec::new();
                for (_, trace, _) in &traces {
                    let cfg = CacheConfig {
                        size,
                        block: 32,
                        sub_block: 8,
                        assoc,
                        wrap_prefetch: prefetch,
                    };
                    let mut cs = CacheSystem::new(cfg, cfg)?;
                    trace.replay(&mut cs);
                    rates.push(cs.icache().read_miss_ratio());
                }
                let label = format!(
                    "{:>4}B {}-way{}",
                    size,
                    assoc,
                    if prefetch { " +prefetch" } else { "" }
                );
                let winner = if rates[0] < rates[1] { "D16" } else { "DLXe" };
                println!("{:<22} {:>12.4} {:>12.4}  {}", label, rates[0], rates[1], winner);
            }
        }
    }

    // The design question: what size does each ISA need for a target miss
    // rate?
    let target = 0.01;
    println!("\nsmallest direct-mapped I-cache with miss rate < {target}:");
    for (isa, trace, _) in &traces {
        let mut answer = None;
        for size in [256u32, 512, 1024, 2048, 4096, 8192, 16384] {
            let cfg = CacheConfig::paper(size, 32);
            let mut cs = CacheSystem::new(cfg, cfg)?;
            trace.replay(&mut cs);
            if cs.icache().read_miss_ratio() < target {
                answer = Some(size);
                break;
            }
        }
        match answer {
            Some(size) => println!("  {}: {} bytes", isa_name(*isa), size),
            None => println!("  {}: more than 16K", isa_name(*isa)),
        }
    }
    Ok(())
}

fn isa_name(isa: Isa) -> &'static str {
    isa.name()
}
